//! Versioned serialization of a trained [`Network`] — the handoff point
//! between training and serving.
//!
//! The paper trains on one beefy CPU box; a production deployment trains
//! somewhere, freezes the model, and serves it elsewhere. A snapshot
//! captures exactly what inference needs — the full [`NetworkConfig`]
//! (architecture, LSH parameters, seed) plus every layer's weights and
//! biases — and *rebuilds the hash tables on load* from the restored
//! weights, because bucket contents are a pure function of the weights
//! and the (seeded) hash family. Adam moments and the optimizer step are
//! deliberately not captured: a snapshot is a frozen inference artifact,
//! not a training checkpoint.
//!
//! ## Format (version 2, little-endian)
//!
//! ```text
//! magic   b"SLIDSNAP"                      8 bytes
//! version u32 = 2
//! config  (see encode_config: dims, adam, per-layer LSH params)
//! layers  per layer:
//!           enc u8                         0 = f32, 1 = q16
//!           enc 0: weights len u64 + f32 bits
//!           enc 1: code count u64, per-row f32 scales (units of them),
//!                  i16 codes (count of them, stored as u16 bits)
//!           biases len u64 + f32 bits      (always f32)
//! check   u64 FNV-1a over everything above
//! ```
//!
//! Version 1 (no per-layer `enc` tag; every layer f32) is still read.
//! [`write_network`] emits version 2 with every layer f32 — a round trip
//! is bit-identical, so restored dense predictions equal the source
//! network's exactly (pinned by `tests/serving.rs`).
//! [`write_network_quantized`] stores the *output layer* as i16
//! fixed-point with per-row scales ([`QuantizedRows`]): the reader
//! dequantizes into the network weights (so selection tables are built
//! from the same values serving dots against) and also hands back the
//! quantized rows for the fused [`slide_kernels::gather_dot_q16`] /
//! [`slide_kernels::dot_batch_q16`] inference path.

use std::io::{Read, Write};
use std::path::Path;

use slide_kernels::{AdamParams, KernelMode};
use slide_lsh::policy::InsertionPolicy;
use slide_lsh::sampling::SamplingStrategy;

use crate::config::{Activation, FamilySpec, LayerConfig, LshLayerConfig, NetworkConfig};
use crate::error::ConfigError;
use crate::network::Network;
use crate::quant::QuantizedRows;
use crate::schedule::RebuildSchedule;

const MAGIC: &[u8; 8] = b"SLIDSNAP";
const VERSION: u32 = 2;
/// Oldest format version this build still reads.
const MIN_VERSION: u32 = 1;

/// Per-layer weight encoding tag (version ≥ 2).
const ENC_F32: u8 = 0;
const ENC_Q16: u8 = 1;

/// Error restoring a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error reading or writing the snapshot.
    Io(std::io::Error),
    /// The bytes do not start with the snapshot magic.
    BadMagic,
    /// The snapshot's format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The byte stream is truncated or internally inconsistent.
    Corrupt(&'static str),
    /// The embedded configuration failed validation.
    Config(ConfigError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::BadMagic => write!(f, "not a SLIDE snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (max {VERSION})")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Config(e) => write!(f, "snapshot config invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<ConfigError> for SnapshotError {
    fn from(e: ConfigError) -> Self {
        SnapshotError::Config(e)
    }
}

// ---------------------------------------------------------------------
// Little-endian writer/reader over a byte buffer.

#[derive(Debug, Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&(v as u16).to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

#[derive(Debug)]
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Corrupt("truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i16(&mut self) -> Result<i16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as i16)
    }
    fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.u32()?))
    }
    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Corrupt("size overflow"))
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Config encoding.

fn encode_config(e: &mut Enc, c: &NetworkConfig) {
    e.u64(c.input_dim as u64);
    e.u64(c.seed);
    e.u8(match c.kernel_mode {
        KernelMode::Scalar => 0,
        KernelMode::Vectorized => 1,
    });
    e.f32(c.adam.lr);
    e.f32(c.adam.beta1);
    e.f32(c.adam.beta2);
    e.f32(c.adam.eps);
    e.u32(c.layers.len() as u32);
    for layer in &c.layers {
        e.u64(layer.units as u64);
        e.u8(match layer.activation {
            Activation::Relu => 0,
            Activation::Softmax => 1,
        });
        match &layer.lsh {
            None => e.u8(0),
            Some(lsh) => {
                e.u8(1);
                match lsh.family {
                    FamilySpec::SimHash { sparsity } => {
                        e.u8(0);
                        e.f64(sparsity);
                    }
                    FamilySpec::Wta { m } => {
                        e.u8(1);
                        e.u64(m as u64);
                    }
                    FamilySpec::Dwta { m } => {
                        e.u8(2);
                        e.u64(m as u64);
                    }
                    FamilySpec::Doph { bin_width, top_t } => {
                        e.u8(3);
                        e.u32(bin_width);
                        e.u64(top_t as u64);
                    }
                }
                e.u64(lsh.k as u64);
                e.u64(lsh.l as u64);
                e.u32(lsh.table_bits);
                e.u64(lsh.bucket_capacity as u64);
                e.u8(match lsh.policy {
                    InsertionPolicy::Reservoir => 0,
                    InsertionPolicy::Fifo => 1,
                });
                match lsh.strategy {
                    SamplingStrategy::Vanilla { budget } => {
                        e.u8(0);
                        e.u64(budget as u64);
                    }
                    SamplingStrategy::TopK { budget } => {
                        e.u8(1);
                        e.u64(budget as u64);
                    }
                    SamplingStrategy::HardThreshold { min_count } => {
                        e.u8(2);
                        e.u64(min_count as u64);
                    }
                }
                e.u64(lsh.rebuild.initial_period);
                e.f64(lsh.rebuild.decay);
                e.u8(lsh.center_rows as u8);
            }
        }
    }
}

fn decode_config(d: &mut Dec<'_>) -> Result<NetworkConfig, SnapshotError> {
    let input_dim = d.usize()?;
    let seed = d.u64()?;
    let kernel_mode = match d.u8()? {
        0 => KernelMode::Scalar,
        1 => KernelMode::Vectorized,
        _ => return Err(SnapshotError::Corrupt("kernel mode tag")),
    };
    let adam = AdamParams {
        lr: d.f32()?,
        beta1: d.f32()?,
        beta2: d.f32()?,
        eps: d.f32()?,
    };
    let n_layers = d.u32()? as usize;
    if n_layers > 1024 {
        return Err(SnapshotError::Corrupt("layer count implausible"));
    }
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let units = d.usize()?;
        let activation = match d.u8()? {
            0 => Activation::Relu,
            1 => Activation::Softmax,
            _ => return Err(SnapshotError::Corrupt("activation tag")),
        };
        let lsh = match d.u8()? {
            0 => None,
            1 => {
                let family = match d.u8()? {
                    0 => FamilySpec::SimHash { sparsity: d.f64()? },
                    1 => FamilySpec::Wta { m: d.usize()? },
                    2 => FamilySpec::Dwta { m: d.usize()? },
                    3 => FamilySpec::Doph {
                        bin_width: d.u32()?,
                        top_t: d.usize()?,
                    },
                    _ => return Err(SnapshotError::Corrupt("family tag")),
                };
                let k = d.usize()?;
                let l = d.usize()?;
                let table_bits = d.u32()?;
                let bucket_capacity = d.usize()?;
                let policy = match d.u8()? {
                    0 => InsertionPolicy::Reservoir,
                    1 => InsertionPolicy::Fifo,
                    _ => return Err(SnapshotError::Corrupt("policy tag")),
                };
                let strategy = match d.u8()? {
                    0 => SamplingStrategy::Vanilla { budget: d.usize()? },
                    1 => SamplingStrategy::TopK { budget: d.usize()? },
                    2 => SamplingStrategy::HardThreshold {
                        min_count: d.usize()?,
                    },
                    _ => return Err(SnapshotError::Corrupt("strategy tag")),
                };
                let rebuild = RebuildSchedule {
                    initial_period: d.u64()?,
                    decay: d.f64()?,
                };
                let center_rows = match d.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(SnapshotError::Corrupt("center_rows flag")),
                };
                Some(LshLayerConfig {
                    family,
                    k,
                    l,
                    table_bits,
                    bucket_capacity,
                    policy,
                    strategy,
                    rebuild,
                    center_rows,
                })
            }
            _ => return Err(SnapshotError::Corrupt("lsh flag")),
        };
        layers.push(LayerConfig {
            units,
            activation,
            lsh,
        });
    }
    Ok(NetworkConfig {
        input_dim,
        layers,
        seed,
        kernel_mode,
        adam,
    })
}

// ---------------------------------------------------------------------
// Public API.

/// A restored snapshot: the network plus, when the snapshot stored the
/// output layer as i16 fixed-point, the decoded [`QuantizedRows`] for the
/// fused quantized inference path.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The restored network (quantized layers dequantized in place,
    /// hash tables rebuilt).
    pub network: Network,
    /// The output layer's quantized rows, when the snapshot carried them.
    pub quantized: Option<QuantizedRows>,
}

fn write_with(network: &Network, quantize_output: bool) -> Vec<u8> {
    let mut e = Enc::default();
    e.buf.extend_from_slice(MAGIC);
    e.u32(VERSION);
    encode_config(&mut e, network.config());
    let last = network.layers().len() - 1;
    for (li, layer) in network.layers().iter().enumerate() {
        if quantize_output && li == last {
            let q = QuantizedRows::from_layer(layer);
            e.u8(ENC_Q16);
            e.u64(q.codes().len() as u64);
            for &s in q.scales() {
                e.f32(s);
            }
            for &c in q.codes() {
                e.i16(c);
            }
        } else {
            let w = layer.weights().flat();
            e.u8(ENC_F32);
            e.u64(w.len() as u64);
            for i in 0..w.len() {
                e.f32(w.get(i));
            }
        }
        let b = layer.biases();
        e.u64(b.len() as u64);
        for i in 0..b.len() {
            e.f32(b.get(i));
        }
    }
    let check = fnv1a(&e.buf);
    e.u64(check);
    e.buf
}

/// Serializes `network` (config + weights + biases) to the version-2 byte
/// format with every layer stored as exact f32.
pub fn write_network(network: &Network) -> Vec<u8> {
    write_with(network, false)
}

/// Serializes `network` with the *output layer* stored as i16 fixed-point
/// rows with per-row scales ([`QuantizedRows`]) — roughly half the bytes
/// of [`write_network`] when the output layer dominates. Hidden layers
/// and all biases stay exact f32; training state is unaffected.
pub fn write_network_quantized(network: &Network) -> Vec<u8> {
    write_with(network, true)
}

/// Restores a [`Network`] from snapshot bytes: validates magic, version
/// and checksum, rebuilds the network from the embedded config, copies
/// the weights and biases in, and rebuilds every LSH layer's hash tables
/// from the restored weights.
pub fn read_network(bytes: &[u8]) -> Result<Network, SnapshotError> {
    read_network_with_centering(bytes, None)
}

/// [`read_network`] with the centering mode decided up front — discards
/// any quantized rows; see [`read_snapshot_with_centering`] to keep them.
pub fn read_network_with_centering(
    bytes: &[u8],
    center_rows: Option<bool>,
) -> Result<Network, SnapshotError> {
    read_snapshot_with_centering(bytes, center_rows).map(|s| s.network)
}

/// Walks the per-layer parameter payload *by size only* and verifies it
/// is exactly consistent with the config's dimensions, before any
/// dimension-derived allocation happens. A corrupt/crafted header
/// claiming units = 2^40 must fail here, not OOM in `Network::new`.
///
/// Version 1 layers are untagged f32. Version ≥ 2 layers start with an
/// encoding tag byte that decides the section's size, so the walk reads
/// each tag at its computed offset.
fn validate_payload_size(
    payload: &[u8],
    start: usize,
    version: u32,
    config: &NetworkConfig,
) -> Result<(), SnapshotError> {
    let remaining = (payload.len() - start) as u128;
    let mut offset: u128 = 0;
    let mut fan_in = config.input_dim as u128;
    for layer in &config.layers {
        let units = layer.units as u128;
        let weights = if version >= 2 {
            let tag = *payload
                .get(
                    start
                        + usize::try_from(offset).map_err(|_| {
                            SnapshotError::Corrupt(
                                "parameter payload size inconsistent with config",
                            )
                        })?,
                )
                .ok_or(SnapshotError::Corrupt(
                    "parameter payload size inconsistent with config",
                ))?;
            match tag {
                // tag + weights len + f32s
                ENC_F32 => 1 + 8 + units * fan_in * 4,
                // tag + code count + per-row f32 scales + i16 codes
                ENC_Q16 => 1 + 8 + units * 4 + units * fan_in * 2,
                _ => return Err(SnapshotError::Corrupt("layer encoding tag")),
            }
        } else {
            // Untagged: weights len + f32s.
            8 + units * fan_in * 4
        };
        // Biases: len + f32s, always.
        offset += weights + 8 + units * 4;
        if offset > remaining {
            return Err(SnapshotError::Corrupt(
                "parameter payload size inconsistent with config",
            ));
        }
        fan_in = units;
    }
    if offset != remaining {
        return Err(SnapshotError::Corrupt(
            "parameter payload size inconsistent with config",
        ));
    }
    Ok(())
}

/// Restores a network *and* any quantized output rows from snapshot
/// bytes, with the centering mode decided up front: when `center_rows`
/// is `Some`, every LSH layer's [`LshLayerConfig::center_rows`] is
/// overridden *before* the post-copy table rebuild, so the tables are
/// built once in the requested geometry instead of being rebuilt again
/// by a later [`Network::set_lsh_centering`] call. The serving engine
/// loads snapshots through this path.
///
/// Quantized layers are dequantized into the network's weights — hash
/// tables are therefore built over exactly the values the quantized dot
/// kernels reproduce — and the output layer's codes are returned in
/// [`LoadedSnapshot::quantized`].
pub fn read_snapshot_with_centering(
    bytes: &[u8],
    center_rows: Option<bool>,
) -> Result<LoadedSnapshot, SnapshotError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(SnapshotError::Corrupt("too short"));
    }
    let (payload, check_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(check_bytes.try_into().unwrap());
    if fnv1a(payload) != stored {
        return Err(SnapshotError::Corrupt("checksum mismatch"));
    }
    let mut d = Dec::new(payload);
    if d.take(MAGIC.len())? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = d.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let mut config = decode_config(&mut d)?;
    if let Some(center) = center_rows {
        for layer in &mut config.layers {
            if let Some(lsh) = &mut layer.lsh {
                lsh.center_rows = center;
            }
        }
    }
    validate_payload_size(payload, d.pos, version, &config)?;
    let mut network = Network::new(config)?;
    let n_layers = network.layers().len();
    let mut quantized: Option<QuantizedRows> = None;
    let mut values: Vec<f32> = Vec::new();
    for (li, layer) in network.layers_mut().iter_mut().enumerate() {
        let enc = if version >= 2 { d.u8()? } else { ENC_F32 };
        match enc {
            ENC_F32 => {
                let n_w = d.usize()?;
                if n_w != layer.weights().flat().len() {
                    return Err(SnapshotError::Corrupt("weight count mismatch"));
                }
                values.clear();
                values.reserve(n_w);
                for _ in 0..n_w {
                    values.push(d.f32()?);
                }
                layer.weights().flat().copy_from(&values);
            }
            ENC_Q16 => {
                let count = d.usize()?;
                let (units, fan_in) = (layer.units(), layer.fan_in());
                if count != units * fan_in {
                    return Err(SnapshotError::Corrupt("quantized code count mismatch"));
                }
                let mut scales = Vec::with_capacity(units);
                for _ in 0..units {
                    let s = d.f32()?;
                    if !s.is_finite() || s < 0.0 {
                        return Err(SnapshotError::Corrupt("quantized scale invalid"));
                    }
                    scales.push(s);
                }
                let mut codes = Vec::with_capacity(count);
                for _ in 0..count {
                    codes.push(d.i16()?);
                }
                let q = QuantizedRows::from_parts(units, fan_in, codes, scales);
                // Dequantize into the layer so table rebuilds (and any
                // f32 fallback path) see the same values the quantized
                // kernels compute against.
                values.resize(fan_in, 0.0);
                for j in 0..units {
                    q.dequantize_row(j, &mut values);
                    for (i, &v) in values.iter().enumerate() {
                        layer.weights().set(j, i, v);
                    }
                }
                if li == n_layers - 1 {
                    quantized = Some(q);
                }
            }
            _ => return Err(SnapshotError::Corrupt("layer encoding tag")),
        }
        let n_b = d.usize()?;
        if n_b != layer.biases().len() {
            return Err(SnapshotError::Corrupt("bias count mismatch"));
        }
        values.clear();
        values.reserve(n_b);
        for _ in 0..n_b {
            values.push(d.f32()?);
        }
        layer.biases().copy_from(&values);
        // Bucket contents are a function of the weights: re-hash now that
        // the trained weights are in place.
        layer.rebuild_tables();
    }
    if d.pos != payload.len() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    Ok(LoadedSnapshot { network, quantized })
}

/// Atomically publishes `bytes` at `path`: the bytes are written to a
/// uniquely-named sibling temp file, fsynced, and then renamed over
/// `path` in one step. Because the rename is atomic (POSIX, same
/// directory), a concurrent reader — in particular a polling
/// `SnapshotWatcher` — can never observe a partially-written snapshot:
/// the path always names either the previous complete file or the new
/// complete one.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] on filesystem failure; the temp file is
/// removed on a failed rename so aborted publishes leave no debris.
pub fn publish_bytes<P: AsRef<Path>>(path: P, bytes: &[u8]) -> Result<(), SnapshotError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    // Process-unique temp names: pid guards against a concurrent
    // publisher process, the sequence against concurrent threads.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // The data must be durable before the rename makes it visible,
        // or a crash could publish a name pointing at unwritten blocks.
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = result {
        std::fs::remove_file(&tmp).ok();
        return Err(e.into());
    }
    // Best-effort directory sync so the rename itself survives a crash;
    // not all platforms allow opening a directory for sync.
    if let Ok(d) = std::fs::File::open(&dir) {
        d.sync_all().ok();
    }
    Ok(())
}

/// Writes a snapshot of `network` to `path` via the atomic
/// tmp+fsync+rename publication path ([`publish_bytes`]), so a watcher
/// polling `path` never sees a torn file.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] on filesystem failure.
pub fn save_network<P: AsRef<Path>>(network: &Network, path: P) -> Result<(), SnapshotError> {
    publish_bytes(path, &write_network(network))
}

/// [`save_network`] with a quantized output layer
/// ([`write_network_quantized`]), also via atomic publication.
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] on filesystem failure.
pub fn save_network_quantized<P: AsRef<Path>>(
    network: &Network,
    path: P,
) -> Result<(), SnapshotError> {
    publish_bytes(path, &write_network_quantized(network))
}

/// Loads a snapshot from `path` and restores the network (tables rebuilt).
///
/// # Errors
///
/// Returns [`SnapshotError`] on filesystem failure or a malformed
/// snapshot.
pub fn load_network<P: AsRef<Path>>(path: P) -> Result<Network, SnapshotError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    read_network(&bytes)
}

impl Network {
    /// Serializes this network to snapshot bytes ([`write_network`]).
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        write_network(self)
    }

    /// Serializes this network with a quantized output layer
    /// ([`write_network_quantized`]).
    pub fn to_quantized_snapshot_bytes(&self) -> Vec<u8> {
        write_network_quantized(self)
    }

    /// Restores a network from snapshot bytes ([`read_network`]).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on a malformed snapshot.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        read_network(bytes)
    }

    /// Writes a snapshot file ([`save_network`]) — atomically published,
    /// so a concurrent reader never sees a torn file.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] on filesystem failure.
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        save_network(self, path)
    }

    /// Writes a quantized snapshot file ([`save_network_quantized`]),
    /// also atomically published.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] on filesystem failure.
    pub fn save_quantized_snapshot<P: AsRef<Path>>(&self, path: P) -> Result<(), SnapshotError> {
        save_network_quantized(self, path)
    }

    /// Loads a snapshot file ([`load_network`]).
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] on filesystem failure or a malformed
    /// snapshot.
    pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<Self, SnapshotError> {
        load_network(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LshLayerConfig;

    fn trained_network() -> Network {
        let cfg = NetworkConfig::builder(32, 60)
            .hidden(12)
            .output_lsh(
                LshLayerConfig::dwta(3, 6).with_strategy(SamplingStrategy::TopK { budget: 20 }),
            )
            .seed(99)
            .build()
            .unwrap();
        let net = Network::new(cfg).unwrap();
        // Perturb weights away from init so the round trip is not trivial.
        net.layers()[0].weights().set(3, 5, 1.25);
        net.layers()[1].biases().set(7, -0.5);
        net
    }

    #[test]
    fn publish_is_atomic_and_leaves_no_temp_debris() {
        let net = trained_network();
        let dir = std::env::temp_dir().join(format!("slide_publish_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.slidesnap");
        // Publish twice (an initial write and an overwrite): both must
        // land complete and loadable.
        save_network(&net, &path).unwrap();
        save_network_quantized(&net, &path).unwrap();
        let restored = load_network(&path).unwrap();
        assert_eq!(restored.config().input_dim, net.config().input_dim);
        // No temp siblings survive a successful publish.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp debris: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn round_trip_preserves_config_and_parameters() {
        let net = trained_network();
        let bytes = net.to_snapshot_bytes();
        let restored = Network::from_snapshot_bytes(&bytes).unwrap();
        assert_eq!(restored.config(), net.config());
        for (a, b) in net.layers().iter().zip(restored.layers()) {
            let (wa, wb) = (a.weights().flat(), b.weights().flat());
            assert_eq!(wa.len(), wb.len());
            for i in 0..wa.len() {
                assert_eq!(wa.get(i).to_bits(), wb.get(i).to_bits(), "weight {i}");
            }
            for i in 0..a.biases().len() {
                assert_eq!(
                    a.biases().get(i).to_bits(),
                    b.biases().get(i).to_bits(),
                    "bias {i}"
                );
            }
        }
    }

    #[test]
    fn restored_tables_reflect_restored_weights() {
        let net = trained_network();
        let restored = Network::from_snapshot_bytes(&net.to_snapshot_bytes()).unwrap();
        let lsh = restored.layers()[1].lsh().expect("output layer has LSH");
        // One initial build at Network::new + one rebuild after the weight
        // copy.
        assert_eq!(lsh.rebuild_count(), 2);
        assert!(lsh.tables().stats().total_items > 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = trained_network().to_snapshot_bytes();
        bytes[0] = b'X';
        // Checksum now fails first; flip the stored checksum too to reach
        // the magic check.
        let n = bytes.len();
        let check = fnv1a(&bytes[..n - 8]).to_le_bytes();
        bytes[n - 8..].copy_from_slice(&check);
        assert!(matches!(
            Network::from_snapshot_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = trained_network().to_snapshot_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            Network::from_snapshot_bytes(&bytes),
            Err(SnapshotError::Corrupt("checksum mismatch"))
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = trained_network().to_snapshot_bytes();
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                Network::from_snapshot_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn inflated_dimensions_rejected_before_allocation() {
        // A crafted header claiming absurd layer sizes (with a fixed-up
        // checksum — FNV is not tamper-proof) must fail the payload-size
        // check instead of attempting a huge allocation.
        let mut bytes = trained_network().to_snapshot_bytes();
        // First layer's `units` sits after magic(8) + version(4) +
        // input_dim(8) + seed(8) + kernel_mode(1) + adam(16) +
        // n_layers(4) = 49 bytes.
        bytes[49..57].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let n = bytes.len();
        let check = fnv1a(&bytes[..n - 8]).to_le_bytes();
        bytes[n - 8..].copy_from_slice(&check);
        assert!(matches!(
            Network::from_snapshot_bytes(&bytes),
            Err(SnapshotError::Corrupt(
                "parameter payload size inconsistent with config"
            ))
        ));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = trained_network().to_snapshot_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let n = bytes.len();
        let check = fnv1a(&bytes[..n - 8]).to_le_bytes();
        bytes[n - 8..].copy_from_slice(&check);
        assert!(matches!(
            Network::from_snapshot_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn malformed_snapshots_return_matching_typed_errors() {
        // Table-driven failure paths: every mutation must surface as the
        // matching typed error — never a panic, never a wrong category.
        // The checksum is recomputed after each mutation (except in the
        // corruption cases, where the stale checksum *is* the failure) so
        // each case reaches the check it targets.
        enum Expect {
            Corrupt,
            BadMagic,
            UnsupportedVersion(u32),
        }
        let fix_checksum = |bytes: &mut Vec<u8>| {
            let n = bytes.len();
            let check = fnv1a(&bytes[..n - 8]).to_le_bytes();
            bytes[n - 8..].copy_from_slice(&check);
        };
        type Case = (&'static str, Box<dyn Fn(Vec<u8>) -> Vec<u8>>, Expect);
        let cases: Vec<Case> = vec![
            ("empty", Box::new(|_| Vec::new()), Expect::Corrupt),
            (
                "truncated inside magic",
                Box::new(|b: Vec<u8>| b[..4].to_vec()),
                Expect::Corrupt,
            ),
            (
                "truncated inside config",
                Box::new(|b: Vec<u8>| b[..30].to_vec()),
                Expect::Corrupt,
            ),
            (
                "truncated inside parameters",
                Box::new(|b: Vec<u8>| {
                    let cut = b.len() * 3 / 4;
                    let mut t = b[..cut].to_vec();
                    // Long enough to carry its own (recomputed) checksum,
                    // so the *payload* truncation is what fails.
                    let n = t.len();
                    let check = fnv1a(&t[..n - 8]).to_le_bytes();
                    t[n - 8..].copy_from_slice(&check);
                    t
                }),
                Expect::Corrupt,
            ),
            (
                "last byte missing",
                Box::new(|b: Vec<u8>| b[..b.len() - 1].to_vec()),
                Expect::Corrupt,
            ),
            (
                "checksum bytes flipped",
                Box::new(|mut b: Vec<u8>| {
                    let n = b.len();
                    b[n - 1] ^= 0xFF;
                    b
                }),
                Expect::Corrupt,
            ),
            (
                "header byte corrupted",
                Box::new(|mut b: Vec<u8>| {
                    b[20] ^= 0x10;
                    b
                }),
                Expect::Corrupt,
            ),
            (
                "weight byte corrupted",
                Box::new(|mut b: Vec<u8>| {
                    let mid = b.len() / 2;
                    b[mid] ^= 0x01;
                    b
                }),
                Expect::Corrupt,
            ),
            (
                "bad magic (checksum fixed up)",
                Box::new(move |mut b: Vec<u8>| {
                    b[..8].copy_from_slice(b"NOTSNAPS");
                    fix_checksum(&mut b);
                    b
                }),
                Expect::BadMagic,
            ),
            (
                "future version 3 (checksum fixed up)",
                Box::new(move |mut b: Vec<u8>| {
                    b[8..12].copy_from_slice(&3u32.to_le_bytes());
                    fix_checksum(&mut b);
                    b
                }),
                Expect::UnsupportedVersion(3),
            ),
            (
                "version 0 (checksum fixed up)",
                Box::new(move |mut b: Vec<u8>| {
                    b[8..12].copy_from_slice(&0u32.to_le_bytes());
                    fix_checksum(&mut b);
                    b
                }),
                Expect::UnsupportedVersion(0),
            ),
            (
                "future version u32::MAX (checksum fixed up)",
                Box::new(move |mut b: Vec<u8>| {
                    b[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
                    fix_checksum(&mut b);
                    b
                }),
                Expect::UnsupportedVersion(u32::MAX),
            ),
        ];
        let good = trained_network().to_snapshot_bytes();
        for (name, mutate, expect) in cases {
            let bytes = mutate(good.clone());
            let got = Network::from_snapshot_bytes(&bytes);
            match (expect, got) {
                (Expect::Corrupt, Err(SnapshotError::Corrupt(_))) => {}
                (Expect::BadMagic, Err(SnapshotError::BadMagic)) => {}
                (Expect::UnsupportedVersion(want), Err(SnapshotError::UnsupportedVersion(v)))
                    if v == want => {}
                (_, got) => panic!("case {name:?}: wrong outcome {got:?}"),
            }
        }
    }

    /// Emits `net` in the legacy version-1 layout: no per-layer encoding
    /// tags, every layer f32. This is byte-for-byte what `write_network`
    /// produced before version 2.
    fn v1_bytes(net: &Network) -> Vec<u8> {
        let mut e = Enc::default();
        e.buf.extend_from_slice(MAGIC);
        e.u32(1);
        encode_config(&mut e, net.config());
        for layer in net.layers() {
            let w = layer.weights().flat();
            e.u64(w.len() as u64);
            for i in 0..w.len() {
                e.f32(w.get(i));
            }
            let b = layer.biases();
            e.u64(b.len() as u64);
            for i in 0..b.len() {
                e.f32(b.get(i));
            }
        }
        let check = fnv1a(&e.buf);
        e.u64(check);
        e.buf
    }

    #[test]
    fn legacy_v1_snapshots_still_load() {
        let net = trained_network();
        let loaded = read_snapshot_with_centering(&v1_bytes(&net), None).unwrap();
        assert!(loaded.quantized.is_none());
        assert_eq!(loaded.network.config(), net.config());
        for (a, b) in net.layers().iter().zip(loaded.network.layers()) {
            let (wa, wb) = (a.weights().flat(), b.weights().flat());
            for i in 0..wa.len() {
                assert_eq!(wa.get(i).to_bits(), wb.get(i).to_bits(), "weight {i}");
            }
        }
    }

    #[test]
    fn legacy_v1_corruption_still_detected() {
        let mut bytes = v1_bytes(&trained_network());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            Network::from_snapshot_bytes(&bytes),
            Err(SnapshotError::Corrupt("checksum mismatch"))
        ));
    }

    #[test]
    fn quantized_round_trip_bounds_error_and_returns_rows() {
        let net = trained_network();
        let bytes = net.to_quantized_snapshot_bytes();
        let loaded = read_snapshot_with_centering(&bytes, None).unwrap();
        let q = loaded.quantized.as_ref().expect("quantized rows present");
        let out = &net.layers()[1];
        assert_eq!(q.units(), out.units());
        assert_eq!(q.fan_in(), out.fan_in());
        // Hidden layer and all biases are exact.
        let (ha, hb) = (
            net.layers()[0].weights().flat(),
            loaded.network.layers()[0].weights().flat(),
        );
        for i in 0..ha.len() {
            assert_eq!(
                ha.get(i).to_bits(),
                hb.get(i).to_bits(),
                "hidden weight {i}"
            );
        }
        for (a, b) in net.layers().iter().zip(loaded.network.layers()) {
            for i in 0..a.biases().len() {
                assert_eq!(a.biases().get(i).to_bits(), b.biases().get(i).to_bits());
            }
        }
        // Output rows are within half a quantization step, and the
        // network's restored weights equal the dequantized codes exactly
        // (tables and any f32 fallback see the same values).
        let mut row = vec![0.0f32; out.fan_in()];
        let mut deq = vec![0.0f32; out.fan_in()];
        for j in 0..q.units() {
            out.weights().read_row_into(j, &mut row);
            q.dequantize_row(j, &mut deq);
            // Half a quantization step, padded for f32 rounding in the
            // encode (the reciprocal 32767/max is not exact).
            let bound = q.scale(j) * 0.505 + 1e-12;
            for i in 0..row.len() {
                assert!((row[i] - deq[i]).abs() <= bound, "row {j} col {i}");
                assert_eq!(
                    loaded.network.layers()[1].weights().get(j, i).to_bits(),
                    deq[i].to_bits(),
                    "restored weight must equal dequantized code ({j},{i})"
                );
            }
        }
    }

    #[test]
    fn quantized_snapshot_is_smaller() {
        let net = trained_network();
        let f32_len = net.to_snapshot_bytes().len();
        let q_len = net.to_quantized_snapshot_bytes().len();
        // The 60×12 output layer dominates this net; q16 halves its rows.
        assert!(q_len < f32_len, "{q_len} vs {f32_len}");
        let out_w_bytes = 60 * 12 * 4;
        assert!(f32_len - q_len > out_w_bytes / 3, "{q_len} vs {f32_len}");
    }

    #[test]
    fn quantized_corruption_and_bad_tags_detected() {
        let net = trained_network();
        let good = net.to_quantized_snapshot_bytes();
        // Flipped code byte → checksum.
        let mut bytes = good.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            read_snapshot_with_centering(&bytes, None),
            Err(SnapshotError::Corrupt("checksum mismatch"))
        ));
        // Unknown encoding tag (checksum fixed up) → typed error from the
        // payload-size walk, before any allocation.
        let mut ce = Enc::default();
        ce.buf.extend_from_slice(MAGIC);
        ce.u32(VERSION);
        encode_config(&mut ce, net.config());
        let tag_pos = ce.buf.len();
        assert_eq!(good[tag_pos], ENC_F32, "first layer is f32");
        let mut bytes = good.clone();
        bytes[tag_pos] = 7;
        let n = bytes.len();
        let check = fnv1a(&bytes[..n - 8]).to_le_bytes();
        bytes[n - 8..].copy_from_slice(&check);
        assert!(matches!(
            read_snapshot_with_centering(&bytes, None),
            Err(SnapshotError::Corrupt("layer encoding tag"))
        ));
        // Truncation inside the quantized section (own checksum) → size
        // inconsistency.
        let cut = good.len() - 100;
        let mut bytes = good[..cut].to_vec();
        let n = bytes.len();
        let check = fnv1a(&bytes[..n - 8]).to_le_bytes();
        bytes[n - 8..].copy_from_slice(&check);
        assert!(matches!(
            read_snapshot_with_centering(&bytes, None),
            Err(SnapshotError::Corrupt(
                "parameter payload size inconsistent with config"
            ))
        ));
    }

    #[test]
    fn file_round_trip() {
        let net = trained_network();
        let path = std::env::temp_dir().join("slide_snapshot_test.slidesnap");
        net.save_snapshot(&path).unwrap();
        let restored = Network::load_snapshot(&path).unwrap();
        assert_eq!(restored.config(), net.config());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::UnsupportedVersion(7)
            .to_string()
            .contains('7'));
        assert!(SnapshotError::Corrupt("x").to_string().contains('x'));
    }
}
