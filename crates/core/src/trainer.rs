//! The single batch-parallel HOGWILD training loop, generic over the
//! [`NeuronSelector`] — plus [`SlideTrainer`], the LSH instantiation.
//!
//! Mirrors the paper's §3.1 "OpenMP Parallelization across a Batch": every
//! example in a batch runs on its own thread with a pooled private
//! workspace; gradient updates go straight into the shared weights with no
//! synchronization; hash tables are rebuilt between batches on the decay
//! schedule (only when the selector says it maintains tables).
//!
//! The paper's three systems are one [`Trainer`] with different type
//! parameters: [`SlideTrainer`] (= `Trainer<LshSelector>`),
//! [`crate::baseline::DenseTrainer`] and
//! [`crate::baseline::SampledSoftmaxTrainer`]. Custom selectors get the
//! identical loop through [`Trainer::with_selector`].

use std::time::Instant;

use rayon::prelude::*;
use slide_data::rng::{Rng, Xoshiro256PlusPlus};
use slide_data::source::ExampleSource;
use slide_data::{Dataset, Example};

use crate::config::NetworkConfig;
use crate::error::ConfigError;
use crate::network::{Network, Workspace, WorkspacePool};
use crate::selector::{LshSelector, NeuronSelector};
use crate::telemetry::{Telemetry, TelemetryReport};

/// Options for a training run. Builder-style setters.
///
/// # Example
///
/// ```
/// use slide_core::trainer::TrainOptions;
///
/// let opts = TrainOptions::new(5).batch_size(256).threads(4);
/// assert_eq!(opts.epochs, 5);
/// assert_eq!(opts.batch_size, 256);
/// assert!(opts.pooled_workspaces);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOptions {
    /// Passes over the training set.
    pub epochs: usize,
    /// Examples per batch (paper: 128 for Delicious, 256 for Amazon).
    pub batch_size: usize,
    /// Shuffle example order each epoch.
    pub shuffle: bool,
    /// Worker threads; `None` uses the global rayon pool.
    pub threads: Option<usize>,
    /// Evaluate every this many iterations (needs a test set).
    pub eval_every: Option<u64>,
    /// Max test examples per evaluation.
    pub eval_examples: usize,
    /// Hard iteration cap (for experiments); `None` runs all epochs.
    pub max_iterations: Option<u64>,
    /// Seed for shuffling and per-thread RNG streams.
    pub seed: u64,
    /// Reuse per-thread workspaces across batches and epochs (default).
    /// Disable only to prove pooling is behavior-neutral in tests.
    pub pooled_workspaces: bool,
}

impl TrainOptions {
    /// Creates options for `epochs` passes with paper-style defaults.
    pub fn new(epochs: usize) -> Self {
        Self {
            epochs,
            batch_size: 128,
            shuffle: true,
            threads: None,
            eval_every: None,
            eval_examples: 500,
            max_iterations: None,
            seed: 0,
            pooled_workspaces: true,
        }
    }

    /// Sets the batch size.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Pins the worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables periodic evaluation (requires `train_with_eval`).
    pub fn eval_every(mut self, iterations: u64) -> Self {
        self.eval_every = Some(iterations);
        self
    }

    /// Caps evaluated test examples.
    pub fn eval_examples(mut self, n: usize) -> Self {
        self.eval_examples = n;
        self
    }

    /// Caps total iterations.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Disables per-epoch shuffling (deterministic batch order).
    pub fn no_shuffle(mut self) -> Self {
        self.shuffle = false;
        self
    }

    /// Sets the shuffle/thread RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables workspace pooling.
    pub fn workspace_pooling(mut self, enabled: bool) -> Self {
        self.pooled_workspaces = enabled;
        self
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.epochs == 0 {
            return Err(ConfigError::InvalidOption {
                message: "epochs must be positive".into(),
            });
        }
        if self.batch_size == 0 {
            return Err(ConfigError::InvalidOption {
                message: "batch_size must be positive".into(),
            });
        }
        if self.threads == Some(0) {
            return Err(ConfigError::InvalidOption {
                message: "threads must be positive".into(),
            });
        }
        Ok(())
    }
}

/// One evaluation checkpoint along a run — a point on the paper's
/// time-vs-accuracy and iteration-vs-accuracy curves (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Iterations (batches) completed.
    pub iteration: u64,
    /// Cumulative *training* seconds (evaluation time excluded).
    pub seconds: f64,
    /// P@1 on the test subset.
    pub p_at_1: f64,
    /// Mean training loss since the previous checkpoint.
    pub train_loss: f64,
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Total iterations (batches).
    pub iterations: u64,
    /// Total training seconds (excluding evaluations).
    pub seconds: f64,
    /// Evaluation checkpoints (empty without `eval_every`/test set).
    pub history: Vec<Checkpoint>,
    /// Thread utilization and traffic counters.
    pub telemetry: TelemetryReport,
    /// Mean training loss over the final epoch.
    pub final_loss: f64,
}

/// The shared batch-parallel loop all trainers run — generic over any
/// [`ExampleSource`], so an in-memory [`Dataset`], a memory-mapped
/// [`slide_data::source::MmapDataset`] and any future disk-backed
/// source all drive the identical HOGWILD sweep. In-memory sources go
/// through the zero-copy slice fast path
/// ([`ExampleSource::as_examples`]); disk-backed sources decode into a
/// pooled per-thread [`Example`] buffer.
fn run<S: NeuronSelector, D: ExampleSource + ?Sized>(
    network: &mut Network,
    selector: &S,
    train: &D,
    test: Option<&Dataset>,
    options: &TrainOptions,
) -> Result<TrainReport, ConfigError> {
    options.validate()?;
    if train.is_empty() {
        return Err(ConfigError::InvalidOption {
            message: "training set is empty".into(),
        });
    }
    let pool = match options.threads {
        Some(n) => Some(
            rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| ConfigError::InvalidOption {
                    message: format!("thread pool: {e}"),
                })?,
        ),
        None => None,
    };
    let threads = options.threads.unwrap_or_else(rayon::current_num_threads);
    let telemetry = Telemetry::new(threads);
    // Per-thread workspaces are checked out of this pool and reused for
    // the entire run — batches and epochs share them, so the hot loop
    // performs no per-example allocation.
    let workspaces = WorkspacePool::new(options.seed, options.pooled_workspaces);
    let example_slice = train.as_examples();
    let shard = train.shard_len().filter(|&s| s > 0 && s < train.len());
    let mut order: Vec<u32> = (0..train.len() as u32).collect();
    let mut shuffle_rng = Xoshiro256PlusPlus::seed_from_u64(options.seed ^ 0x5F0F);

    let mut iteration: u64 = 0;
    let mut train_seconds = 0.0f64;
    let mut history = Vec::new();
    let mut loss_acc = 0.0f64;
    let mut loss_count: u64 = 0;
    let mut epoch_loss = 0.0f64;

    'epochs: for _epoch in 0..options.epochs {
        if options.shuffle {
            match shard {
                // The historical path: a global Fisher–Yates, preserving
                // bit-for-bit batch order for in-memory sources.
                None => shuffle_rng.shuffle(&mut order),
                // Disk-backed sources: shuffle at shard granularity so
                // each batch's reads land in a bounded window of the
                // file (pages stay hot), while the epoch still visits a
                // full permutation — shard sequence shuffled, then each
                // shard shuffled internally.
                Some(s) => shard_shuffle(&mut order, s, &mut shuffle_rng),
            }
        }
        let mut epoch_loss_acc = 0.0f64;
        let mut epoch_examples: u64 = 0;

        for batch in order.chunks(options.batch_size) {
            let clr = network.begin_step();
            let t0 = Instant::now();

            // One thread per batch element; asynchronous HOGWILD updates.
            let net_ref = &*network;
            let tel = &telemetry;
            let ws_pool = &workspaces;
            let batch_loss: f64 = {
                let work = || {
                    batch
                        .par_iter()
                        .map_init(
                            || (ws_pool.acquire(net_ref), Example::empty()),
                            |(ws, buf), &idx| {
                                // Zero-copy for resident sources; decode
                                // into the reused per-thread buffer for
                                // disk-backed ones.
                                let ex: &Example = match example_slice {
                                    Some(s) => &s[idx as usize],
                                    None => {
                                        train.read_into(idx as usize, buf);
                                        buf
                                    }
                                };
                                let e0 = Instant::now();
                                let loss = net_ref.train_example(
                                    selector,
                                    ws,
                                    &ex.features,
                                    &ex.labels,
                                    clr,
                                );
                                let (touch, ops, out_active) = traffic(ws, ex.features.nnz());
                                tel.add_busy(
                                    rayon::current_thread_index().unwrap_or(0),
                                    e0.elapsed().as_nanos() as u64,
                                );
                                tel.record_example(out_active, touch, ops);
                                loss as f64
                            },
                        )
                        .sum()
                };
                match &pool {
                    Some(p) => p.install(work),
                    None => work(),
                }
            };
            train_seconds += t0.elapsed().as_secs_f64();
            iteration += 1;
            loss_acc += batch_loss;
            loss_count += batch.len() as u64;
            epoch_loss_acc += batch_loss;
            epoch_examples += batch.len() as u64;

            // Hash-table maintenance on the decay schedule (LSH only).
            if selector.maintains_tables() {
                let m0 = Instant::now();
                for layer in network.layers_mut() {
                    layer.maintain(iteration);
                }
                train_seconds += m0.elapsed().as_secs_f64();
            }

            // Periodic evaluation (clock paused).
            if let (Some(every), Some(test)) = (options.eval_every, test) {
                if iteration.is_multiple_of(every) {
                    let p1 = eval_in_pool(&pool, network, test, options.eval_examples);
                    history.push(Checkpoint {
                        iteration,
                        seconds: train_seconds,
                        p_at_1: p1,
                        train_loss: if loss_count == 0 {
                            0.0
                        } else {
                            loss_acc / loss_count as f64
                        },
                    });
                    loss_acc = 0.0;
                    loss_count = 0;
                }
            }

            if let Some(cap) = options.max_iterations {
                if iteration >= cap {
                    epoch_loss = safe_div(epoch_loss_acc, epoch_examples);
                    break 'epochs;
                }
            }
        }
        epoch_loss = safe_div(epoch_loss_acc, epoch_examples);
    }

    Ok(TrainReport {
        iterations: iteration,
        seconds: train_seconds,
        history,
        telemetry: telemetry.snapshot(train_seconds),
        final_loss: epoch_loss,
    })
}

/// Rebuilds `order` as a shard-local permutation: consecutive index
/// blocks of `shard` examples are emitted in shuffled block order, each
/// internally shuffled. Every index appears exactly once, but any batch
/// only ever touches one ~`shard`-sized window of the source — the
/// locality contract behind [`ExampleSource::shard_len`].
fn shard_shuffle<R: Rng>(order: &mut Vec<u32>, shard: usize, rng: &mut R) {
    let len = order.len();
    let mut shards: Vec<u32> = (0..len.div_ceil(shard) as u32).collect();
    rng.shuffle(&mut shards);
    order.clear();
    for &sh in &shards {
        let start = sh as usize * shard;
        let end = (start + shard).min(len);
        let at = order.len();
        order.extend(start as u32..end as u32);
        rng.shuffle(&mut order[at..]);
    }
}

fn safe_div(num: f64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num / den as f64
    }
}

fn eval_in_pool(
    pool: &Option<rayon::ThreadPool>,
    network: &Network,
    test: &Dataset,
    max: usize,
) -> f64 {
    match pool {
        Some(p) => p.install(|| network.evaluate(test, max)),
        None => network.evaluate(test, max),
    }
}

/// Approximate memory/compute volume of one example's pass, derived from
/// the workspace's active counts: forward + backward touch
/// `|active_l| × |prev_l|` weights each.
fn traffic(ws: &Workspace, input_nnz: usize) -> (u64, u64, usize) {
    let mut prev = input_nnz as u64;
    let mut touches = 0u64;
    let mut out_active = 0usize;
    for active in &ws.active {
        let c = active.len() as u64;
        touches += c * prev;
        prev = c;
        out_active = active.len();
    }
    // Forward read + backward read/update ⇒ ~3 touches per weight, 2
    // multiply-adds.
    (touches * 3, touches * 2, out_active)
}

/// The generic trainer: one network, one selector, the shared loop.
///
/// All of the paper's systems are instantiations — see the module docs.
/// [`SlideTrainer::new`] and the baseline constructors are the convenient
/// entry points; [`Trainer::with_selector`] accepts any custom selector.
#[derive(Debug)]
pub struct Trainer<S: NeuronSelector> {
    network: Network,
    selector: S,
}

/// The SLIDE trainer: LSH adaptive sampling + HOGWILD Adam.
///
/// See the crate-level docs for a complete example.
pub type SlideTrainer = Trainer<LshSelector>;

impl Trainer<LshSelector> {
    /// Builds the SLIDE network (including initial hash tables).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on an inconsistent configuration.
    pub fn new(config: NetworkConfig) -> Result<Self, ConfigError> {
        Self::with_selector(config, LshSelector)
    }
}

impl<S: NeuronSelector> Trainer<S> {
    /// Builds a trainer running `selector` on the network `config`
    /// describes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on an inconsistent configuration.
    pub fn with_selector(config: NetworkConfig, selector: S) -> Result<Self, ConfigError> {
        Ok(Self {
            network: Network::new(config)?,
            selector,
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable network access.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// The selector driving this trainer.
    pub fn selector(&self) -> &S {
        &self.selector
    }

    /// Trains without periodic evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the options are invalid or the dataset is empty; use
    /// [`Trainer::try_train`] for a fallible version.
    pub fn train(&mut self, train: &Dataset, options: &TrainOptions) -> TrainReport {
        self.try_train(train, None, options)
            .expect("invalid training setup")
    }

    /// Trains with periodic evaluation on `test`.
    ///
    /// # Panics
    ///
    /// Panics if the options are invalid or the dataset is empty.
    pub fn train_with_eval(
        &mut self,
        train: &Dataset,
        test: &Dataset,
        options: &TrainOptions,
    ) -> TrainReport {
        self.try_train(train, Some(test), options)
            .expect("invalid training setup")
    }

    /// Fallible training entry point.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid options or an empty dataset.
    pub fn try_train(
        &mut self,
        train: &Dataset,
        test: Option<&Dataset>,
        options: &TrainOptions,
    ) -> Result<TrainReport, ConfigError> {
        run(&mut self.network, &self.selector, train, test, options)
    }

    /// Trains from any [`ExampleSource`] — an in-memory [`Dataset`], a
    /// memory-mapped [`slide_data::source::MmapDataset`], or a custom
    /// source — through the identical batch-parallel loop.
    ///
    /// For sources reporting a [`ExampleSource::shard_len`] locality
    /// hint, epoch shuffling happens at shard granularity (shuffled
    /// shards, shuffled within shards): still a full per-epoch
    /// permutation, but each batch reads from one bounded window of the
    /// backing file. Sources without a hint shuffle globally,
    /// bit-identically to [`Trainer::train`].
    ///
    /// # Panics
    ///
    /// Panics if the options are invalid or the source is empty; use
    /// [`Trainer::try_train_source`] for a fallible version.
    pub fn train_source<D: ExampleSource + ?Sized>(
        &mut self,
        train: &D,
        options: &TrainOptions,
    ) -> TrainReport {
        self.try_train_source(train, None, options)
            .expect("invalid training setup")
    }

    /// Fallible form of [`Trainer::train_source`], with optional
    /// periodic evaluation on an in-memory test set.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid options or an empty source.
    pub fn try_train_source<D: ExampleSource + ?Sized>(
        &mut self,
        train: &D,
        test: Option<&Dataset>,
        options: &TrainOptions,
    ) -> Result<TrainReport, ConfigError> {
        run(&mut self.network, &self.selector, train, test, options)
    }

    /// Mean P@1 over up to 10 000 test examples (full dense scoring).
    pub fn evaluate(&self, test: &Dataset) -> f64 {
        self.network.evaluate(test, 10_000)
    }

    /// Mean P@1 over at most `max_examples` test examples.
    pub fn evaluate_n(&self, test: &Dataset, max_examples: usize) -> f64 {
        self.network.evaluate(test, max_examples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LshLayerConfig;
    use slide_data::synth::{generate, SyntheticConfig};

    fn tiny_data() -> slide_data::synth::SyntheticData {
        generate(&SyntheticConfig::tiny().with_seed(3))
    }

    fn slide_config(data: &slide_data::synth::SyntheticData) -> NetworkConfig {
        NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(24)
            .output_lsh(
                LshLayerConfig::simhash(3, 10)
                    .with_strategy(slide_lsh::SamplingStrategy::Vanilla { budget: 10 }),
            )
            .learning_rate(2e-3)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn options_validation() {
        assert!(TrainOptions::new(0).validate().is_err());
        assert!(TrainOptions::new(1).batch_size(0).validate().is_err());
        let mut o = TrainOptions::new(1);
        o.threads = Some(0);
        assert!(o.validate().is_err());
        assert!(TrainOptions::new(1).validate().is_ok());
    }

    #[test]
    fn slide_trainer_learns_tiny_task() {
        let data = tiny_data();
        let mut trainer = SlideTrainer::new(slide_config(&data)).unwrap();
        let before = trainer.evaluate_n(&data.test, 100);
        let report = trainer.train(
            &data.train,
            &TrainOptions::new(4).batch_size(32).threads(2).seed(1),
        );
        let after = trainer.evaluate_n(&data.test, 100);
        assert!(report.iterations > 0);
        assert!(report.seconds > 0.0);
        assert!(
            after > before + 0.15,
            "P@1 {before:.3} -> {after:.3} (no learning)"
        );
        // Output layer stayed sparse: active ≪ 50 classes.
        assert!(report.telemetry.avg_active_output < 20.0);
    }

    #[test]
    fn eval_history_is_recorded() {
        let data = tiny_data();
        let mut trainer = SlideTrainer::new(slide_config(&data)).unwrap();
        let report = trainer.train_with_eval(
            &data.train,
            &data.test,
            &TrainOptions::new(2)
                .batch_size(32)
                .threads(2)
                .eval_every(5)
                .eval_examples(50),
        );
        assert!(!report.history.is_empty());
        for w in report.history.windows(2) {
            assert!(w[1].iteration > w[0].iteration);
            assert!(w[1].seconds >= w[0].seconds);
        }
    }

    #[test]
    fn max_iterations_caps_run() {
        let data = tiny_data();
        let mut trainer = SlideTrainer::new(slide_config(&data)).unwrap();
        let report = trainer.train(
            &data.train,
            &TrainOptions::new(100)
                .batch_size(16)
                .threads(2)
                .max_iterations(7),
        );
        assert_eq!(report.iterations, 7);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let data = tiny_data();
        let mut trainer = SlideTrainer::new(slide_config(&data)).unwrap();
        let empty = slide_data::Dataset::new(data.train.feature_dim(), data.train.label_dim());
        assert!(trainer
            .try_train(&empty, None, &TrainOptions::new(1))
            .is_err());
    }

    #[test]
    fn tables_are_rebuilt_on_schedule() {
        let data = tiny_data();
        let mut cfg = slide_config(&data);
        // Rebuild every 5 iterations, fixed.
        if let Some(lsh) = &mut cfg.layers.last_mut().unwrap().lsh {
            lsh.rebuild = crate::schedule::RebuildSchedule::fixed(5);
        }
        let mut trainer = SlideTrainer::new(cfg).unwrap();
        trainer.train(
            &data.train,
            &TrainOptions::new(1)
                .batch_size(32)
                .threads(2)
                .max_iterations(16),
        );
        let rebuilds = trainer.network().layers()[1].lsh().unwrap().rebuild_count();
        // Initial build + 3 scheduled (at 5, 10, 15).
        assert_eq!(rebuilds, 4);
    }

    #[test]
    fn deterministic_iteration_count() {
        let data = tiny_data();
        let opts = TrainOptions::new(2).batch_size(50).threads(1).no_shuffle();
        let mut t1 = SlideTrainer::new(slide_config(&data)).unwrap();
        let r1 = t1.train(&data.train, &opts);
        // 600 examples / 50 = 12 batches × 2 epochs.
        assert_eq!(r1.iterations, 24);
    }

    #[test]
    fn dense_baseline_does_not_maintain_tables() {
        // A SLIDE config run through the dense trainer must never rebuild
        // (the dense twin strips LSH, but also the selector opts out).
        let data = tiny_data();
        let mut trainer = crate::baseline::DenseTrainer::new(slide_config(&data)).unwrap();
        trainer.train(
            &data.train,
            &TrainOptions::new(1)
                .batch_size(64)
                .threads(1)
                .max_iterations(3),
        );
        assert!(trainer.network().layers().iter().all(|l| l.lsh().is_none()));
    }

    #[test]
    fn shard_shuffle_is_a_local_permutation() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for (len, shard) in [(100usize, 10usize), (101, 10), (5, 10), (64, 1), (97, 13)] {
            let mut order: Vec<u32> = (0..len as u32).collect();
            shard_shuffle(&mut order, shard, &mut rng);
            // A permutation…
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..len as u32).collect::<Vec<_>>(), "{len}/{shard}");
            // …that concatenates whole shards: each run is one complete
            // input shard (shuffled internally), never a mix of two.
            let mut pos = 0;
            while pos < len {
                let sh = order[pos] as usize / shard;
                let start = sh * shard;
                let run = (start + shard).min(len) - start;
                let mut seg: Vec<u32> = order[pos..pos + run].to_vec();
                seg.sort_unstable();
                assert_eq!(
                    seg,
                    (start as u32..(start + run) as u32).collect::<Vec<_>>(),
                    "run at {pos} is not shard {sh} (len {len}, shard {shard})"
                );
                pos += run;
            }
        }
    }

    #[test]
    fn train_source_on_dataset_matches_train_bitwise() {
        // &Dataset goes through the slice fast path: training through
        // the source API must produce the identical network.
        let data = tiny_data();
        let opts = TrainOptions::new(2).batch_size(32).threads(1).seed(9);
        let mut a = SlideTrainer::new(slide_config(&data)).unwrap();
        a.train(&data.train, &opts);
        let mut b = SlideTrainer::new(slide_config(&data)).unwrap();
        b.train_source(&data.train, &opts);
        assert_eq!(
            a.network().to_snapshot_bytes(),
            b.network().to_snapshot_bytes()
        );
    }

    #[test]
    fn empty_source_is_an_error() {
        let data = tiny_data();
        let mut trainer = SlideTrainer::new(slide_config(&data)).unwrap();
        let empty = slide_data::Dataset::new(data.train.feature_dim(), data.train.label_dim());
        assert!(trainer
            .try_train_source(&empty, None, &TrainOptions::new(1))
            .is_err());
    }

    #[test]
    fn custom_selector_runs_through_generic_trainer() {
        // A selector not shipped by the crate: activate the first
        // `min(units, 8)` neurons of every layer. Exercises the
        // pluggability the refactor exists for.
        #[derive(Debug)]
        struct FirstEight;
        impl NeuronSelector for FirstEight {
            fn name(&self) -> &'static str {
                "first8"
            }
            fn select(
                &self,
                ctx: &crate::selector::SelectionContext<'_>,
                _scratch: &mut crate::selector::SelectorScratch,
                active: &mut crate::selector::ActiveSet,
            ) {
                active.fill_dense(ctx.layer.units().min(8));
            }
        }
        let data = tiny_data();
        let mut trainer =
            Trainer::with_selector(slide_config(&data).without_lsh(), FirstEight).unwrap();
        let report = trainer.train(
            &data.train,
            &TrainOptions::new(1)
                .batch_size(32)
                .threads(2)
                .max_iterations(5),
        );
        assert_eq!(report.iterations, 5);
        // Output active set = 8 sampled + forced labels.
        assert!(report.telemetry.avg_active_output >= 8.0);
        assert!(report.telemetry.avg_active_output < 12.0);
    }
}
