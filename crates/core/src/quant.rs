//! Quantized output-layer rows for inference snapshots.
//!
//! The serving working set is dominated by the output layer: a
//! 128 × 670k extreme-classification head is ~343 MB of f32 weights, and
//! every retrieved candidate costs one row-gather through it. Storing
//! those rows as i16 fixed-point with a per-row scale halves the bytes
//! touched per candidate — the paper's memory-bandwidth argument applied
//! to serving — while training stays f32/HOGWILD untouched.
//!
//! [`QuantizedRows`] is the in-memory decoded form: row-major i16 codes
//! plus one f32 scale per row. Snapshots carry it as the `q16` per-layer
//! encoding (see [`crate::snapshot`]); inference consumes it through the
//! fused dequantize-dot kernels [`slide_kernels::gather_dot_q16`] and
//! [`slide_kernels::dot_batch_q16`], which never materialize an f32 row.
//!
//! Biases are *not* duplicated here: they are per-unit f32 (tiny) and the
//! restored [`crate::layer::Layer`] already holds them.

use slide_kernels::quantize_row;

use crate::layer::Layer;

/// Row-major i16 fixed-point weight rows with per-row scales.
///
/// Row `j` decodes as `w[j][i] ≈ scales[j] * q[j*fan_in + i]`. The
/// quantization error per element is bounded by `scales[j] / 2`
/// (≈ `max|w[j]| / 65534`, up to f32 rounding in the encode).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRows {
    units: usize,
    fan_in: usize,
    q: Vec<i16>,
    scales: Vec<f32>,
}

impl QuantizedRows {
    /// Builds quantized rows from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != units * fan_in` or `scales.len() != units`.
    pub fn from_parts(units: usize, fan_in: usize, q: Vec<i16>, scales: Vec<f32>) -> Self {
        assert_eq!(q.len(), units * fan_in, "code count mismatch");
        assert_eq!(scales.len(), units, "scale count mismatch");
        Self {
            units,
            fan_in,
            q,
            scales,
        }
    }

    /// Quantizes every weight row of `layer` (biases stay on the layer).
    pub fn from_layer(layer: &Layer) -> Self {
        let units = layer.units();
        let fan_in = layer.fan_in();
        let mut row = vec![0.0f32; fan_in];
        let mut q = vec![0i16; units * fan_in];
        let mut scales = Vec::with_capacity(units);
        for j in 0..units {
            layer.weights().read_row_into(j, &mut row);
            scales.push(quantize_row(&row, &mut q[j * fan_in..(j + 1) * fan_in]));
        }
        Self {
            units,
            fan_in,
            q,
            scales,
        }
    }

    /// Number of rows (output units).
    #[inline]
    pub fn units(&self) -> usize {
        self.units
    }

    /// Row width (fan-in of the quantized layer).
    #[inline]
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// The i16 codes of row `j`.
    #[inline]
    pub fn row(&self, j: usize) -> &[i16] {
        &self.q[j * self.fan_in..(j + 1) * self.fan_in]
    }

    /// The dequantization scale of row `j`.
    #[inline]
    pub fn scale(&self, j: usize) -> f32 {
        self.scales[j]
    }

    /// All codes, row-major.
    #[inline]
    pub fn codes(&self) -> &[i16] {
        &self.q
    }

    /// All per-row scales.
    #[inline]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Decodes row `j` into `out` (for tests and diagnostics; inference
    /// uses the fused kernels and never calls this).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != fan_in`.
    pub fn dequantize_row(&self, j: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.fan_in, "row buffer size mismatch");
        let s = self.scales[j];
        for (o, &c) in out.iter_mut().zip(self.row(j)) {
            *o = s * c as f32;
        }
    }

    /// Bytes of the decoded working set (codes + scales), for telemetry.
    pub fn bytes(&self) -> usize {
        self.q.len() * std::mem::size_of::<i16>() + self.scales.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LshLayerConfig, NetworkConfig};
    use crate::network::Network;

    fn network() -> Network {
        let cfg = NetworkConfig::builder(24, 40)
            .hidden(10)
            .output_lsh(LshLayerConfig::simhash(3, 6))
            .seed(5)
            .build()
            .unwrap();
        Network::new(cfg).unwrap()
    }

    #[test]
    fn from_layer_bounds_error_by_half_scale() {
        let net = network();
        let out = &net.layers()[1];
        let q = QuantizedRows::from_layer(out);
        assert_eq!(q.units(), out.units());
        assert_eq!(q.fan_in(), out.fan_in());
        let mut row = vec![0.0f32; out.fan_in()];
        let mut deq = vec![0.0f32; out.fan_in()];
        for j in 0..q.units() {
            out.weights().read_row_into(j, &mut row);
            q.dequantize_row(j, &mut deq);
            // Half a step, padded for f32 rounding in the encode.
            let bound = q.scale(j) * 0.505 + 1e-12;
            for (i, (&w, &d)) in row.iter().zip(&deq).enumerate() {
                assert!(
                    (w - d).abs() <= bound,
                    "row {j} col {i}: |{w} - {d}| > {bound}"
                );
            }
        }
    }

    #[test]
    fn round_trip_through_parts() {
        let net = network();
        let q = QuantizedRows::from_layer(&net.layers()[1]);
        let rebuilt = QuantizedRows::from_parts(
            q.units(),
            q.fan_in(),
            q.codes().to_vec(),
            q.scales().to_vec(),
        );
        assert_eq!(rebuilt, q);
    }

    #[test]
    #[should_panic(expected = "code count mismatch")]
    fn from_parts_validates_code_count() {
        QuantizedRows::from_parts(2, 3, vec![0i16; 5], vec![0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "scale count mismatch")]
    fn from_parts_validates_scale_count() {
        QuantizedRows::from_parts(2, 3, vec![0i16; 6], vec![0.0; 3]);
    }

    #[test]
    fn bytes_reports_halved_working_set() {
        let net = network();
        let out = &net.layers()[1];
        let q = QuantizedRows::from_layer(out);
        let f32_bytes = out.units() * out.fan_in() * 4;
        assert!(
            q.bytes() <= f32_bytes * 6 / 10,
            "{} vs {}",
            q.bytes(),
            f32_bytes
        );
    }
}
