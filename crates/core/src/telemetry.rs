//! Training telemetry: the software substitute for the paper's VTune
//! measurements (Table 2 core utilization, Figure 6 inputs).
//!
//! Every worker thread accumulates its busy nanoseconds into a
//! cache-padded atomic slot; utilization is `Σ busy / (threads × wall)` —
//! the same quantity VTune's "CPU utilization" reports. Memory-traffic
//! counters (weights touched, activations computed) feed the memsim
//! replay for Figure 6.

use std::sync::atomic::{AtomicU64, Ordering};

use slide_kernels::CachePadded;

/// Shared counters, written concurrently by worker threads.
#[derive(Debug)]
pub struct Telemetry {
    /// Busy nanoseconds per worker slot (cache-padded against false
    /// sharing — itself one of the paper's optimizations).
    busy_nanos: Vec<CachePadded<AtomicU64>>,
    /// Total active neurons seen at the output layer.
    active_output: AtomicU64,
    /// Examples processed.
    examples: AtomicU64,
    /// Weight elements read or written.
    weight_touches: AtomicU64,
    /// Arithmetic ops performed (multiply-adds).
    compute_ops: AtomicU64,
}

impl Telemetry {
    /// Creates counters for up to `threads` worker slots.
    pub fn new(threads: usize) -> Self {
        Self {
            busy_nanos: (0..threads.max(1))
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            active_output: AtomicU64::new(0),
            examples: AtomicU64::new(0),
            weight_touches: AtomicU64::new(0),
            compute_ops: AtomicU64::new(0),
        }
    }

    /// Adds busy time for worker `slot` (wrapped modulo the slot count).
    #[inline]
    pub fn add_busy(&self, slot: usize, nanos: u64) {
        self.busy_nanos[slot % self.busy_nanos.len()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Records one processed example with its output active-set size and
    /// the memory/compute volume of its pass.
    #[inline]
    pub fn record_example(&self, active_output: usize, weight_touches: u64, compute_ops: u64) {
        self.examples.fetch_add(1, Ordering::Relaxed);
        self.active_output
            .fetch_add(active_output as u64, Ordering::Relaxed);
        self.weight_touches
            .fetch_add(weight_touches, Ordering::Relaxed);
        self.compute_ops.fetch_add(compute_ops, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self, wall_seconds: f64) -> TelemetryReport {
        let busy: u64 = self
            .busy_nanos
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        let threads = self.busy_nanos.len();
        let examples = self.examples.load(Ordering::Relaxed);
        TelemetryReport {
            threads,
            wall_seconds,
            busy_seconds: busy as f64 / 1e9,
            utilization: if wall_seconds > 0.0 {
                (busy as f64 / 1e9) / (wall_seconds * threads as f64)
            } else {
                0.0
            },
            examples,
            avg_active_output: if examples == 0 {
                0.0
            } else {
                self.active_output.load(Ordering::Relaxed) as f64 / examples as f64
            },
            weight_touches: self.weight_touches.load(Ordering::Relaxed),
            compute_ops: self.compute_ops.load(Ordering::Relaxed),
        }
    }
}

/// Immutable telemetry snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryReport {
    /// Worker slots.
    pub threads: usize,
    /// Wall-clock seconds measured by the caller.
    pub wall_seconds: f64,
    /// Sum of per-thread busy seconds.
    pub busy_seconds: f64,
    /// `busy / (threads × wall)` — Table 2's core utilization.
    pub utilization: f64,
    /// Examples processed.
    pub examples: u64,
    /// Mean active output neurons per example (the paper's "≈ 1000 of
    /// 205K / ≈ 3000 of 670K" observation).
    pub avg_active_output: f64,
    /// Weight elements read/written (memsim replay input).
    pub weight_touches: u64,
    /// Multiply-add operations (Figure 6 compute denominator).
    pub compute_ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let t = Telemetry::new(4);
        // 4 threads each busy 0.5 s over a 1 s wall: 50% utilization.
        for slot in 0..4 {
            t.add_busy(slot, 500_000_000);
        }
        let r = t.snapshot(1.0);
        assert!((r.utilization - 0.5).abs() < 1e-9);
        assert_eq!(r.threads, 4);
        assert!((r.busy_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn example_averages() {
        let t = Telemetry::new(1);
        t.record_example(100, 1000, 2000);
        t.record_example(200, 3000, 4000);
        let r = t.snapshot(1.0);
        assert_eq!(r.examples, 2);
        assert!((r.avg_active_output - 150.0).abs() < 1e-9);
        assert_eq!(r.weight_touches, 4000);
        assert_eq!(r.compute_ops, 6000);
    }

    #[test]
    fn zero_wall_no_nan() {
        let t = Telemetry::new(2);
        let r = t.snapshot(0.0);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.avg_active_output, 0.0);
    }

    #[test]
    fn slot_wraps() {
        let t = Telemetry::new(2);
        t.add_busy(7, 100); // 7 % 2 == 1
        let r = t.snapshot(1.0);
        assert!(r.busy_seconds > 0.0);
    }

    #[test]
    fn concurrent_recording() {
        let t = std::sync::Arc::new(Telemetry::new(8));
        let handles: Vec<_> = (0..8)
            .map(|slot| {
                let t = std::sync::Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.add_busy(slot, 10);
                        t.record_example(5, 6, 7);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let r = t.snapshot(1.0);
        assert_eq!(r.examples, 8000);
        assert_eq!(r.weight_touches, 48_000);
    }
}
