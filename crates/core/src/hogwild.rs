//! Lock-free shared parameter storage for HOGWILD-style SGD.
//!
//! The paper (§3.1) relies on Recht et al.'s HOGWILD result: with very
//! sparse gradients, threads may update shared weights *without any
//! synchronization* — occasional lost updates are statistically harmless
//! and convergence is unaffected. In C++ this is a plain `float*` racing
//! across OpenMP threads. In Rust, unsynchronized aliased writes are
//! undefined behaviour, so we get the same machine behaviour soundly with
//! **relaxed atomics**: a relaxed `AtomicU32` load/store of an `f32` bit
//! pattern compiles to the very same `mov` instructions as the C++ race,
//! with defined semantics.
//!
//! [`HogwildArray::add_racy`] is the paper's update: read-modify-write as
//! two independent atomic ops, so concurrent adds may drop one update
//! (exactly the HOGWILD tolerance). [`HogwildArray::add_cas`] is the
//! strict alternative (a compare-exchange loop) used as the ablation
//! baseline in the `hogwild_accumulate` bench.

use std::sync::atomic::{AtomicU32, Ordering};

/// A shared array of `f32` supporting lock-free concurrent reads and
/// writes with relaxed ordering.
///
/// # Example
///
/// ```
/// use slide_core::hogwild::HogwildArray;
///
/// let a = HogwildArray::zeroed(4);
/// a.set(2, 1.5);
/// a.add_racy(2, 0.5);
/// assert_eq!(a.get(2), 2.0);
/// ```
#[derive(Debug)]
pub struct HogwildArray {
    data: Vec<AtomicU32>,
}

impl HogwildArray {
    /// Allocates `len` zeros.
    pub fn zeroed(len: usize) -> Self {
        let mut data = Vec::with_capacity(len);
        data.resize_with(len, || AtomicU32::new(0));
        Self { data }
    }

    /// Builds from existing values.
    pub fn from_values(values: &[f32]) -> Self {
        Self {
            data: values.iter().map(|v| AtomicU32::new(v.to_bits())).collect(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        f32::from_bits(self.data[i].load(Ordering::Relaxed))
    }

    /// Relaxed store of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn set(&self, i: usize, value: f32) {
        self.data[i].store(value.to_bits(), Ordering::Relaxed);
    }

    /// HOGWILD add: `a[i] += delta` as a racy load-then-store. Concurrent
    /// adds to the same element may lose one of the updates — the
    /// documented HOGWILD semantics the paper depends on.
    #[inline]
    pub fn add_racy(&self, i: usize, delta: f32) {
        let cell = &self.data[i];
        let old = f32::from_bits(cell.load(Ordering::Relaxed));
        cell.store((old + delta).to_bits(), Ordering::Relaxed);
    }

    /// Lossless concurrent add via a compare-exchange loop. Slower under
    /// contention; the ablation comparator for [`HogwildArray::add_racy`].
    #[inline]
    pub fn add_cas(&self, i: usize, delta: f32) {
        let cell = &self.data[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + delta).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The backing atomic cells as a slice, for handing whole parameter
    /// ranges to the fused kernels in `slide_kernels::fused`.
    ///
    /// The cells follow the **bit-level HOGWILD slice protocol** those
    /// kernels document: every cell holds an `f32` bit pattern, read with
    /// a relaxed load + `f32::from_bits` ([`slide_kernels::fused::read`])
    /// and written with `f32::to_bits` + a relaxed store
    /// ([`slide_kernels::fused::write`]). No read-modify-write is atomic,
    /// so concurrent updates may lose one — the documented HOGWILD
    /// tolerance.
    #[inline]
    pub fn as_atomics(&self) -> &[AtomicU32] {
        &self.data
    }

    /// The cells of `[start, start + len)` as a slice (see
    /// [`HogwildArray::as_atomics`] for the access protocol).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[inline]
    pub fn atomic_slice(&self, start: usize, len: usize) -> &[AtomicU32] {
        &self.data[start..start + len]
    }

    /// Prefetches the cache line holding element `i` (hint only).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if i < self.data.len() {
            slide_kernels::ops::prefetch_read(self.data.as_ptr().wrapping_add(i));
        }
    }

    /// Copies element range `[start, start + out.len())` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read_into(&self, start: usize, out: &mut [f32]) {
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.get(start + j);
        }
    }

    /// Snapshot of the whole array.
    pub fn to_vec(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Overwrites all elements from a slice.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn copy_from(&self, values: &[f32]) {
        assert_eq!(values.len(), self.len(), "length mismatch");
        for (i, &v) in values.iter().enumerate() {
            self.set(i, v);
        }
    }
}

impl Clone for HogwildArray {
    fn clone(&self) -> Self {
        Self::from_values(&self.to_vec())
    }
}

/// A row-major 2-D view over a [`HogwildArray`]: `rows × cols` weights
/// where row `r` is one neuron's fan-in weight vector.
#[derive(Debug, Clone)]
pub struct HogwildMatrix {
    data: HogwildArray,
    rows: usize,
    cols: usize,
}

impl HogwildMatrix {
    /// Allocates a zeroed matrix.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        Self {
            data: HogwildArray::zeroed(rows * cols),
            rows,
            cols,
        }
    }

    /// Builds from a row-major value slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols`.
    pub fn from_values(rows: usize, cols: usize, values: &[f32]) -> Self {
        assert_eq!(values.len(), rows * cols, "shape mismatch");
        Self {
            data: HogwildArray::from_values(values),
            rows,
            cols,
        }
    }

    /// Number of rows (neurons).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (fan-in).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The flat element index of `(row, col)`.
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Relaxed load of `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data.get(self.index(row, col))
    }

    /// Relaxed store of `(row, col)`.
    #[inline]
    pub fn set(&self, row: usize, col: usize, value: f32) {
        self.data.set(self.index(row, col), value);
    }

    /// Row `row`'s cells as an atomic slice of length `cols`, the unit
    /// the fused kernels consume (one neuron's fan-in weights or Adam
    /// moments). Access follows the bit-level protocol documented on
    /// [`HogwildArray::as_atomics`].
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows`.
    #[inline]
    pub fn row(&self, row: usize) -> &[AtomicU32] {
        self.data.atomic_slice(row * self.cols, self.cols)
    }

    /// Copies row `row` into `out` (`out.len()` must equal `cols`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn read_row_into(&self, row: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.cols, "row buffer size mismatch");
        self.data.read_into(row * self.cols, out);
    }

    /// The backing flat array.
    #[inline]
    pub fn flat(&self) -> &HogwildArray {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_get_set() {
        let a = HogwildArray::zeroed(3);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(0), 0.0);
        a.set(1, -2.5);
        assert_eq!(a.get(1), -2.5);
    }

    #[test]
    fn from_values_roundtrip() {
        let v = vec![1.0f32, -2.0, 3.5];
        let a = HogwildArray::from_values(&v);
        assert_eq!(a.to_vec(), v);
    }

    #[test]
    fn add_variants_agree_single_threaded() {
        let a = HogwildArray::from_values(&[1.0, 1.0]);
        a.add_racy(0, 0.5);
        a.add_cas(1, 0.5);
        assert_eq!(a.get(0), a.get(1));
    }

    #[test]
    fn cas_add_is_lossless_under_contention() {
        let a = Arc::new(HogwildArray::zeroed(1));
        let threads = 8;
        let per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        a.add_cas(0, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(a.get(0), (threads * per_thread) as f32);
    }

    #[test]
    fn racy_add_loses_few_updates_under_contention() {
        // HOGWILD's premise: racy adds lose *some* updates under
        // contention. This test hammers a SINGLE element from all threads
        // — the worst case, far harsher than SLIDE's sparse updates — so
        // only require that a nontrivial fraction survives and that
        // updates are never fabricated.
        let a = Arc::new(HogwildArray::zeroed(1));
        let threads = 4;
        let per_thread = 50_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        a.add_racy(0, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (threads * per_thread) as f32;
        let got = a.get(0);
        assert!(got > total * 0.2, "kept only {got} of {total}");
        assert!(got <= total, "gained updates from nowhere: {got}");
    }

    #[test]
    fn matrix_indexing() {
        let m = HogwildMatrix::zeroed(3, 4);
        m.set(2, 3, 7.0);
        assert_eq!(m.get(2, 3), 7.0);
        assert_eq!(m.flat().get(11), 7.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
    }

    #[test]
    fn matrix_row_read() {
        let m = HogwildMatrix::from_values(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut row = [0.0f32; 3];
        m.read_row_into(1, &mut row);
        assert_eq!(row, [4.0, 5.0, 6.0]);
    }

    #[test]
    fn atomic_row_views_follow_bit_protocol() {
        let m = HogwildMatrix::from_values(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let row = m.row(1);
        assert_eq!(row.len(), 3);
        assert_eq!(slide_kernels::fused::read(&row[2]), 6.0);
        slide_kernels::fused::write(&row[0], -4.5);
        assert_eq!(m.get(1, 0), -4.5);
        // The flat view aliases the same cells.
        assert_eq!(m.flat().as_atomics().len(), 6);
        assert_eq!(
            slide_kernels::fused::read(&m.flat().atomic_slice(3, 1)[0]),
            -4.5
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matrix_shape_validated() {
        let _ = HogwildMatrix::from_values(2, 2, &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concurrent_disjoint_writes_are_exact() {
        // Threads writing disjoint elements must never interfere — the
        // actual sparse-update pattern SLIDE produces.
        let a = Arc::new(HogwildArray::zeroed(64));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..8 {
                        let idx = t * 8 + i;
                        for _ in 0..1000 {
                            a.add_racy(idx, 1.0);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..64 {
            assert_eq!(a.get(i), 1000.0, "element {i}");
        }
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HogwildArray>();
        assert_send_sync::<HogwildMatrix>();
    }
}
