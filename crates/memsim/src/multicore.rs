//! Multi-core memory hierarchy: per-core TLB + L1 + L2, shared LLC.
//!
//! Used for the Figure 6 replay, where the paper's thread trends come
//! from aggregate-cache effects: adding cores adds private L1/L2 capacity
//! (which helps a workload with a small, hot per-thread working set like
//! SLIDE) while the shared LLC is contended by everyone (which hurts a
//! streaming workload like the dense baseline).

use crate::cache::{Cache, CacheConfig};
use crate::tlb::{PageSize, Tlb, TlbConfig};

/// RAM latency in cycles (matches [`crate::hierarchy`]).
const RAM_CYCLES: u64 = 200;

/// Per-core private state.
#[derive(Debug, Clone)]
struct Core {
    tlb: Tlb,
    l1: Cache,
    l2: Cache,
    stall_cycles: u64,
    accesses: u64,
}

/// A `cores × (TLB + L1 + L2)` + shared-LLC hierarchy.
///
/// # Example
///
/// ```
/// use slide_memsim::multicore::MultiCoreHierarchy;
/// use slide_memsim::tlb::PageSize;
///
/// let mut sim = MultiCoreHierarchy::typical_server(4, PageSize::Kb4);
/// sim.access(0, 0x1000);
/// sim.access(3, 0x2000);
/// assert!(sim.report(100).memory_bound_fraction > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiCoreHierarchy {
    cores: Vec<Core>,
    llc: Cache,
    page_size: PageSize,
    touched_pages: std::collections::HashSet<u64>,
}

/// Aggregate report across cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiCoreReport {
    /// Mean dTLB miss rate across cores.
    pub dtlb_miss_rate: f64,
    /// Shared-LLC miss rate.
    pub llc_miss_rate: f64,
    /// Total stall cycles / (stall + compute).
    pub memory_bound_fraction: f64,
    /// Total simulated accesses.
    pub accesses: u64,
}

impl MultiCoreHierarchy {
    /// `cores` cores with Broadwell-class private caches and a shared
    /// 32 MiB LLC.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn typical_server(cores: usize, page_size: PageSize) -> Self {
        assert!(cores > 0, "at least one core required");
        let core = Core {
            tlb: Tlb::new(TlbConfig::typical_dtlb(page_size)),
            l1: Cache::new(CacheConfig::l1d()),
            l2: Cache::new(CacheConfig::l2()),
            stall_cycles: 0,
            accesses: 0,
        };
        Self {
            cores: vec![core; cores],
            llc: Cache::new(CacheConfig::llc()),
            page_size,
            touched_pages: std::collections::HashSet::new(),
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// One data access by `core` at `vaddr`.
    ///
    /// # Panics
    ///
    /// Panics if `core >= num_cores()`.
    pub fn access(&mut self, core: usize, vaddr: u64) {
        let page = vaddr >> self.page_size.shift();
        let c = &mut self.cores[core];
        c.accesses += 1;
        if !c.tlb.access(vaddr) {
            // Page walk: charge one L2-latency lookup per level plus RAM
            // when the walk entry is cold in the LLC.
            if self.touched_pages.insert(page) {
                c.stall_cycles += 1500; // minor fault
            }
            for level in 0..self.page_size.walk_levels() {
                let pte = 0x8000_0000_0000u64
                    ^ (page << 6).rotate_left(level * 9)
                    ^ ((level as u64) << 40);
                c.stall_cycles += c.l2.config().hit_cycles;
                if !self.llc.access(pte) {
                    c.stall_cycles += RAM_CYCLES;
                }
            }
        }
        // Private L1 → private L2 → shared LLC → RAM.
        let mut cycles = c.l1.config().hit_cycles;
        if !c.l1.access(vaddr) {
            cycles += c.l2.config().hit_cycles;
            if !c.l2.access(vaddr) {
                cycles += self.llc.config().hit_cycles;
                if !self.llc.access(vaddr) {
                    cycles += RAM_CYCLES;
                }
            }
        }
        c.stall_cycles += cycles;
    }

    /// Aggregate report with `compute_cycles` of useful work.
    pub fn report(&self, compute_cycles: u64) -> MultiCoreReport {
        let stalls: u64 = self.cores.iter().map(|c| c.stall_cycles).sum();
        let accesses: u64 = self.cores.iter().map(|c| c.accesses).sum();
        let total = stalls + compute_cycles;
        let dtlb = self
            .cores
            .iter()
            .map(|c| c.tlb.stats().miss_rate())
            .sum::<f64>()
            / self.cores.len() as f64;
        MultiCoreReport {
            dtlb_miss_rate: dtlb,
            llc_miss_rate: self.llc.stats().miss_rate(),
            memory_bound_fraction: if total == 0 {
                0.0
            } else {
                stalls as f64 / total as f64
            },
            accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_caches_isolate_cores() {
        let mut sim = MultiCoreHierarchy::typical_server(2, PageSize::Kb4);
        // Core 0 warms a line; core 1's first access to it must still miss
        // its private L1 (it can hit the shared LLC).
        sim.access(0, 0x4000);
        let before = sim.cores[1].stall_cycles;
        sim.access(1, 0x4000);
        let c1_cost = sim.cores[1].stall_cycles - before;
        // L1(4) + L2(14) + LLC hit(42) = 60 — more than a pure L1 hit.
        assert!(c1_cost >= 42, "core 1 got a free private hit: {c1_cost}");
    }

    #[test]
    fn more_cores_help_partitioned_hot_sets() {
        // A workload whose hot set fits the aggregate L2 of 8 cores but
        // not of 1 core: per-access stalls must drop with more cores.
        // 2 MB pages neutralize TLB effects so the test isolates the
        // private-cache capacity effect.
        let hot_bytes: u64 = 4 << 20; // 4 MiB > one 1 MiB L2
        let per_core = |cores: usize| {
            let mut sim = MultiCoreHierarchy::typical_server(cores, PageSize::Mb2);
            let slice = hot_bytes / cores as u64;
            for _round in 0..16 {
                for c in 0..cores {
                    let base = c as u64 * slice;
                    let mut a = base;
                    while a < base + slice {
                        sim.access(c, a);
                        a += 64;
                    }
                }
            }
            let r = sim.report(0);
            sim.cores.iter().map(|c| c.stall_cycles).sum::<u64>() as f64 / r.accesses as f64
        };
        let one = per_core(1);
        let eight = per_core(8);
        assert!(
            eight < one * 0.6,
            "aggregate cache effect missing: 1 core {one:.1} vs 8 cores {eight:.1} cycles/access"
        );
    }

    #[test]
    fn shared_llc_is_contended() {
        // Streams that individually fit the LLC but together exceed it.
        let stream = 20u64 << 20; // 20 MiB each; 2 streams > 32 MiB LLC
        let miss_rate = |cores: usize| {
            let mut sim = MultiCoreHierarchy::typical_server(cores, PageSize::Kb4);
            for _round in 0..2 {
                for c in 0..cores {
                    let base = (c as u64) << 36;
                    let mut a = 0;
                    while a < stream {
                        sim.access(c, base + a);
                        a += 64;
                    }
                }
            }
            sim.report(0).llc_miss_rate
        };
        assert!(miss_rate(2) > miss_rate(1) + 0.2);
    }

    #[test]
    fn report_sane() {
        let mut sim = MultiCoreHierarchy::typical_server(4, PageSize::Mb2);
        for i in 0..10_000u64 {
            sim.access((i % 4) as usize, i * 128);
        }
        let r = sim.report(50_000);
        assert_eq!(r.accesses, 10_000);
        assert!((0.0..=1.0).contains(&r.memory_bound_fraction));
        assert!((0.0..=1.0).contains(&r.dtlb_miss_rate));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = MultiCoreHierarchy::typical_server(0, PageSize::Kb4);
    }
}
