//! Set-associative LRU TLB with a page-walk and page-fault model.

/// Virtual-memory page size (paper Appendix D: 4 KB default, 2 MB and
/// 1 GB with Transparent Hugepages / libhugetlbfs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// Default 4 KiB pages.
    Kb4,
    /// 2 MiB transparent hugepages.
    Mb2,
    /// 1 GiB hugepages.
    Gb1,
}

impl PageSize {
    /// Page size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Kb4 => 4 << 10,
            PageSize::Mb2 => 2 << 20,
            PageSize::Gb1 => 1 << 30,
        }
    }

    /// log2 of the page size (shift to get the page number).
    pub fn shift(self) -> u32 {
        self.bytes().trailing_zeros()
    }

    /// Radix page-table levels walked on a TLB miss (x86-64: 4 levels for
    /// 4 KB, 3 for 2 MB, 2 for 1 GB — each hugepage level removed cuts one
    /// memory access from the walk).
    pub fn walk_levels(self) -> u32 {
        match self {
            PageSize::Kb4 => 4,
            PageSize::Mb2 => 3,
            PageSize::Gb1 => 2,
        }
    }
}

impl std::fmt::Display for PageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageSize::Kb4 => write!(f, "4KB"),
            PageSize::Mb2 => write!(f, "2MB"),
            PageSize::Gb1 => write!(f, "1GB"),
        }
    }
}

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Page size translated by this TLB.
    pub page_size: PageSize,
}

impl TlbConfig {
    /// A Broadwell-class dTLB: 64 entries, 4-way for 4 KB pages; 32-entry
    /// 4-way for 2 MB; 4-entry fully associative for 1 GB.
    pub fn typical_dtlb(page_size: PageSize) -> Self {
        match page_size {
            PageSize::Kb4 => Self {
                entries: 64,
                associativity: 4,
                page_size,
            },
            PageSize::Mb2 => Self {
                entries: 32,
                associativity: 4,
                page_size,
            },
            PageSize::Gb1 => Self {
                entries: 4,
                associativity: 4,
                page_size,
            },
        }
    }

    fn num_sets(&self) -> usize {
        (self.entries / self.associativity).max(1)
    }
}

/// A set-associative LRU translation lookaside buffer.
///
/// # Example
///
/// ```
/// use slide_memsim::tlb::{PageSize, Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::typical_dtlb(PageSize::Kb4));
/// assert!(!tlb.access(0x1000));      // cold miss
/// assert!(tlb.access(0x1fff));       // same page: hit
/// assert_eq!(tlb.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    /// `sets[s]` holds (page_number, lru_tick) pairs, at most `assoc` each.
    sets: Vec<Vec<(u64, u64)>>,
    tick: u64,
    stats: TlbStats,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Total translations requested.
    pub accesses: u64,
    /// Translations not present in the TLB.
    pub misses: u64,
    /// Pages touched for the first time (minor page faults).
    pub page_faults: u64,
    /// Total page-table-walk memory accesses incurred by misses.
    pub walk_accesses: u64,
}

impl TlbStats {
    /// Miss rate in `[0, 1]`; zero when nothing was accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if entries or associativity is zero.
    pub fn new(config: TlbConfig) -> Self {
        assert!(
            config.entries > 0 && config.associativity > 0,
            "TLB geometry must be positive"
        );
        Self {
            sets: vec![Vec::new(); config.num_sets()],
            config,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Translates the virtual address; returns `true` on a TLB hit.
    ///
    /// Misses charge [`PageSize::walk_levels`] page-walk accesses. Note:
    /// the first-touch page-fault model lives in the caller
    /// ([`crate::hierarchy::MemoryHierarchy`]) because faults are
    /// per-page, not per-TLB.
    pub fn access(&mut self, vaddr: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let page = vaddr >> self.config.page_size.shift();
        let set_idx = (page % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(p, _)| *p == page) {
            entry.1 = self.tick;
            return true;
        }
        self.stats.misses += 1;
        self.stats.walk_accesses += self.config.page_size.walk_levels() as u64;
        if set.len() == self.config.associativity {
            // Evict the least recently used way.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("nonempty set");
            set.swap_remove(lru);
        }
        set.push((page, self.tick));
        false
    }

    /// Counters so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.tick = 0;
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_arithmetic() {
        assert_eq!(PageSize::Kb4.bytes(), 4096);
        assert_eq!(PageSize::Kb4.shift(), 12);
        assert_eq!(PageSize::Mb2.shift(), 21);
        assert_eq!(PageSize::Gb1.shift(), 30);
        assert_eq!(PageSize::Kb4.walk_levels(), 4);
        assert_eq!(PageSize::Gb1.walk_levels(), 2);
        assert_eq!(PageSize::Mb2.to_string(), "2MB");
    }

    #[test]
    fn same_page_hits() {
        let mut tlb = Tlb::new(TlbConfig::typical_dtlb(PageSize::Kb4));
        assert!(!tlb.access(0x0));
        for off in [1u64, 100, 4095] {
            assert!(tlb.access(off), "offset {off} should hit");
        }
        assert_eq!(tlb.stats().misses, 1);
        assert_eq!(tlb.stats().accesses, 4);
    }

    #[test]
    fn distinct_pages_miss() {
        let mut tlb = Tlb::new(TlbConfig::typical_dtlb(PageSize::Kb4));
        for p in 0..10u64 {
            assert!(!tlb.access(p * 4096));
        }
        assert_eq!(tlb.stats().misses, 10);
    }

    #[test]
    fn hugepages_cover_more_addresses() {
        // The same 64 MiB strided sweep: 4 KB pages thrash a 64-entry TLB,
        // 2 MB pages fit easily.
        let sweep: Vec<u64> = (0..16_384).map(|i| i * 4096).collect();
        let mut small = Tlb::new(TlbConfig::typical_dtlb(PageSize::Kb4));
        let mut huge = Tlb::new(TlbConfig::typical_dtlb(PageSize::Mb2));
        for _ in 0..3 {
            for &a in &sweep {
                small.access(a);
                huge.access(a);
            }
        }
        assert!(
            small.stats().miss_rate() > 0.9,
            "small-page miss rate {}",
            small.stats().miss_rate()
        );
        assert!(
            huge.stats().miss_rate() < 0.01,
            "huge-page miss rate {}",
            huge.stats().miss_rate()
        );
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways: A B A C → C evicts B (LRU), so A still hits.
        let cfg = TlbConfig {
            entries: 2,
            associativity: 2,
            page_size: PageSize::Kb4,
        };
        let mut tlb = Tlb::new(cfg);
        let page = |n: u64| n * 4096;
        tlb.access(page(1)); // A miss
        tlb.access(page(2)); // B miss
        tlb.access(page(1)); // A hit (refreshes)
        tlb.access(page(3)); // C miss, evicts B
        assert!(tlb.access(page(1)), "A must survive");
        assert!(!tlb.access(page(2)), "B must have been evicted");
    }

    #[test]
    fn capacity_bounded_working_set_always_hits_after_warmup() {
        let cfg = TlbConfig::typical_dtlb(PageSize::Kb4);
        let mut tlb = Tlb::new(cfg);
        let pages: Vec<u64> = (0..16).map(|i| i * 4096 * 17).collect(); // 16 « 64 entries
        for &a in &pages {
            tlb.access(a);
        }
        let misses_after_warmup = tlb.stats().misses;
        for _ in 0..10 {
            for &a in &pages {
                tlb.access(a);
            }
        }
        assert_eq!(tlb.stats().misses, misses_after_warmup);
    }

    #[test]
    fn walk_accesses_counted_per_level() {
        let mut tlb = Tlb::new(TlbConfig::typical_dtlb(PageSize::Kb4));
        tlb.access(0);
        tlb.access(1 << 20);
        assert_eq!(tlb.stats().walk_accesses, 8); // 2 misses × 4 levels
    }

    #[test]
    fn reset_clears_everything() {
        let mut tlb = Tlb::new(TlbConfig::typical_dtlb(PageSize::Kb4));
        tlb.access(0);
        tlb.reset();
        assert_eq!(tlb.stats(), TlbStats::default());
        assert!(!tlb.access(0), "contents must be cleared too");
    }
}
