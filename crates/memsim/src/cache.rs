//! Set-associative LRU cache model.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes (64 on x86-64).
    pub line_bytes: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Hit latency in cycles (for the stall model).
    pub hit_cycles: u64,
}

impl CacheConfig {
    /// 32 KiB 8-way L1D, 4-cycle hit.
    pub fn l1d() -> Self {
        Self {
            capacity_bytes: 32 << 10,
            line_bytes: 64,
            associativity: 8,
            hit_cycles: 4,
        }
    }

    /// 1 MiB 16-way L2, 14-cycle hit.
    pub fn l2() -> Self {
        Self {
            capacity_bytes: 1 << 20,
            line_bytes: 64,
            associativity: 16,
            hit_cycles: 14,
        }
    }

    /// 32 MiB 16-way last-level cache, 42-cycle hit.
    pub fn llc() -> Self {
        Self {
            capacity_bytes: 32 << 20,
            line_bytes: 64,
            associativity: 16,
            hit_cycles: 42,
        }
    }

    fn num_sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes / self.associativity).max(1)
    }
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups performed at this level.
    pub accesses: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when nothing was accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative LRU cache.
///
/// # Example
///
/// ```
/// use slide_memsim::cache::{Cache, CacheConfig};
///
/// let mut l1 = Cache::new(CacheConfig::l1d());
/// assert!(!l1.access(0));   // cold miss
/// assert!(l1.access(63));   // same 64-byte line
/// assert!(!l1.access(64));  // next line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<(u64, u64)>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, line not a power
    /// of two).
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.capacity_bytes > 0 && config.line_bytes > 0 && config.associativity > 0,
            "cache geometry must be positive"
        );
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            sets: vec![Vec::new(); config.num_sets()],
            config,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses the line containing `addr`; returns `true` on a hit and
    /// inserts the line on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let line = addr / self.config.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(entry) = set.iter_mut().find(|(l, _)| *l == line) {
            entry.1 = self.tick;
            return true;
        }
        self.stats.misses += 1;
        if set.len() == self.config.associativity {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
                .expect("nonempty set");
            set.swap_remove(lru);
        }
        set.push((line, self.tick));
        false
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.tick = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_hits() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert!(!c.access(128));
        assert!(c.access(129));
        assert!(c.access(191));
        assert!(!c.access(192));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn sequential_scan_miss_rate_is_one_per_line() {
        let mut c = Cache::new(CacheConfig::l1d());
        // Touch every 4 bytes across 64 KiB: 16 accesses per 64-byte line.
        for a in (0..65_536u64).step_by(4) {
            c.access(a);
        }
        let rate = c.stats().miss_rate();
        assert!((rate - 1.0 / 16.0).abs() < 0.001, "rate {rate}");
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig::l1d()); // 32 KiB
        let lines: Vec<u64> = (0..256).map(|i| i * 64).collect(); // 16 KiB
        for &a in &lines {
            c.access(a);
        }
        let warm = c.stats().misses;
        for _ in 0..5 {
            for &a in &lines {
                c.access(a);
            }
        }
        assert_eq!(c.stats().misses, warm);
    }

    #[test]
    fn thrashing_set_conflicts() {
        // Hammer addresses that all map to set 0 of L1 (stride = sets ×
        // line = 64 sets × 64 B = 4096): 9 distinct lines in an 8-way set
        // always miss.
        let mut c = Cache::new(CacheConfig::l1d());
        for round in 0..10 {
            for i in 0..9u64 {
                let hit = c.access(i * 4096);
                if round > 0 {
                    assert!(!hit, "round {round} line {i} should conflict-miss");
                }
            }
        }
    }

    #[test]
    fn larger_cache_has_fewer_misses() {
        let mut l1 = Cache::new(CacheConfig::l1d());
        let mut l2 = Cache::new(CacheConfig::l2());
        // Random-ish walk over 256 KiB (fits L2, thrashes L1).
        let mut addr = 1u64;
        for _ in 0..200_000 {
            addr = (addr
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407))
                % (256 << 10);
            l1.access(addr);
            l2.access(addr);
        }
        assert!(l2.stats().miss_rate() < l1.stats().miss_rate());
    }

    #[test]
    fn reset_clears() {
        let mut c = Cache::new(CacheConfig::l2());
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_line() {
        let _ = Cache::new(CacheConfig {
            capacity_bytes: 1024,
            line_bytes: 48,
            associativity: 2,
            hit_cycles: 1,
        });
    }
}
