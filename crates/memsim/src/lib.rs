//! # slide-memsim
//!
//! A small memory-hierarchy simulator substituting for the hardware
//! performance counters the paper reads with Intel VTune and `perf`
//! (Tables 2 and 4, Figure 6, Appendix D).
//!
//! The paper's micro-architecture claims are about *address streams*: how
//! many distinct pages the training loop touches (TLB pressure, page-walk
//! cycles, page faults with and without Transparent Hugepages) and how
//! cache-friendly the per-thread access pattern is (memory-bound pipeline
//! stalls). We cannot read CPU counters portably, so we record the address
//! stream of the real Rust training loop and replay it through:
//!
//! * [`tlb::Tlb`] — a set-associative LRU TLB with configurable page size
//!   (4 KB normal pages, 2 MB / 1 GB hugepages), plus a radix page-walk
//!   cost model and a first-touch (minor) page-fault model;
//! * [`cache::Cache`] — set-associative LRU caches composable into a
//!   [`hierarchy::MemoryHierarchy`] (L1/L2/LLC) that yields stall-cycle
//!   estimates and the memory-bound fraction of Figure 6.
//!
//! The simulator is deliberately simple — in-order, one access at a time —
//! because the paper's results are about *miss-rate direction and
//! magnitude*, not absolute cycles.
//!
//! ## Example
//!
//! ```
//! use slide_memsim::{hierarchy::MemoryHierarchy, tlb::PageSize};
//!
//! let mut sim = MemoryHierarchy::typical_server(PageSize::Kb4);
//! // A strided walk over 8 MiB touches many pages and lines.
//! for i in 0..100_000u64 {
//!     sim.access(i * 83);
//! }
//! let r = sim.report(100_000);
//! assert!(r.dtlb_miss_rate >= 0.0);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod multicore;
pub mod tlb;
pub mod trace;

pub use cache::{Cache, CacheConfig};
pub use hierarchy::{MemReport, MemoryHierarchy};
pub use multicore::{MultiCoreHierarchy, MultiCoreReport};
pub use tlb::{PageSize, Tlb, TlbConfig};
pub use trace::AccessTrace;
