//! Address-trace recording and replay.
//!
//! The figure/table binaries record the *relative* addresses the training
//! loop touches (weight rows, activation slots, hash buckets) and replay
//! them through a [`crate::hierarchy::MemoryHierarchy`]. Recording
//! relative offsets from a fixed virtual base keeps traces process-
//! independent and reproducible.

use crate::hierarchy::{MemReport, MemoryHierarchy};

/// A recorded stream of virtual addresses plus the compute-op count that
/// accompanied it (the Figure 6 denominator).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessTrace {
    addresses: Vec<u64>,
    compute_ops: u64,
    base: u64,
}

impl AccessTrace {
    /// Creates an empty trace with a virtual base address.
    pub fn new() -> Self {
        Self {
            addresses: Vec::new(),
            compute_ops: 0,
            base: 0x10_0000_0000, // arbitrary fixed base, away from null
        }
    }

    /// Creates an empty trace, pre-allocating for `capacity` accesses.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut t = Self::new();
        t.addresses.reserve(capacity);
        t
    }

    /// Records an access at byte offset `offset` within region `region`.
    ///
    /// Regions are spread 1 GiB apart so, e.g., the weight matrix and the
    /// hash tables never alias in the simulator.
    #[inline]
    pub fn record(&mut self, region: u32, offset: u64) {
        self.addresses
            .push(self.base + ((region as u64) << 30) + offset);
    }

    /// Adds `n` arithmetic operations to the compute-cycle denominator.
    #[inline]
    pub fn add_compute(&mut self, n: u64) {
        self.compute_ops += n;
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// Recorded compute operations.
    pub fn compute_ops(&self) -> u64 {
        self.compute_ops
    }

    /// The raw address stream.
    pub fn addresses(&self) -> &[u64] {
        &self.addresses
    }

    /// Replays the trace through `sim` and returns the report, assuming
    /// one compute op ≈ one cycle.
    pub fn replay(&self, sim: &mut MemoryHierarchy) -> MemReport {
        for &a in &self.addresses {
            sim.access(a);
        }
        sim.report(self.compute_ops)
    }

    /// Discards everything.
    pub fn clear(&mut self) {
        self.addresses.clear();
        self.compute_ops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::PageSize;

    #[test]
    fn regions_do_not_alias() {
        let mut t = AccessTrace::new();
        t.record(0, 0);
        t.record(1, 0);
        let a = t.addresses()[0];
        let b = t.addresses()[1];
        assert_eq!(b - a, 1 << 30);
    }

    #[test]
    fn replay_produces_report() {
        let mut t = AccessTrace::with_capacity(1000);
        for i in 0..1000u64 {
            t.record(0, i * 64);
        }
        t.add_compute(10_000);
        let mut sim = MemoryHierarchy::typical_server(PageSize::Kb4);
        let r = t.replay(&mut sim);
        assert_eq!(sim.accesses(), 1000);
        assert!(r.total_cycles > 10_000);
    }

    #[test]
    fn clear_resets() {
        let mut t = AccessTrace::new();
        t.record(0, 1);
        t.add_compute(5);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.compute_ops(), 0);
    }
}
