//! The composed memory hierarchy and its stall-cycle report.

use std::collections::HashSet;

use crate::cache::{Cache, CacheConfig};
use crate::tlb::{PageSize, Tlb, TlbConfig};

/// RAM access latency in cycles (server DRAM, ~200 cycles at 2.4 GHz).
const RAM_CYCLES: u64 = 200;

/// A TLB + L1/L2/LLC hierarchy that replays an address stream and
/// produces the counter metrics of the paper's Table 4 and the
/// memory-bound breakdown of Figure 6.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    tlb: Tlb,
    levels: Vec<Cache>,
    /// Pages ever touched, for the first-touch (minor fault) model.
    touched_pages: HashSet<u64>,
    page_size: PageSize,
    /// Accumulated data-stall cycles.
    stall_cycles: u64,
    /// RAM reads caused by TLB-miss page walks that themselves missed the
    /// caches (the paper's "RAM read dTLB-miss" row).
    ram_reads_tlb_miss: u64,
    accesses: u64,
}

/// Counter report in the shape of the paper's Table 4 / Figure 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemReport {
    /// dTLB load miss rate (Table 4 row 1).
    pub dtlb_miss_rate: f64,
    /// Fraction of all cycles spent in page-table walks (Table 4 row 3).
    pub ptw_cycle_fraction: f64,
    /// RAM reads attributable to TLB misses (Table 4 row 5), absolute.
    pub ram_reads_tlb_miss: u64,
    /// Minor page faults (Table 4 row 7), absolute.
    pub page_faults: u64,
    /// L1 / L2 / LLC miss rates.
    pub cache_miss_rates: [f64; 3],
    /// Fraction of total cycles stalled on memory — the Figure 6
    /// "Memory Bound" bar.
    pub memory_bound_fraction: f64,
    /// Total simulated cycles (compute + stall).
    pub total_cycles: u64,
}

impl MemoryHierarchy {
    /// Builds a typical-server hierarchy (Broadwell-class dTLB geometry,
    /// 32 KiB L1D / 1 MiB L2 / 32 MiB LLC) translating `page_size` pages.
    pub fn typical_server(page_size: PageSize) -> Self {
        Self::new(
            TlbConfig::typical_dtlb(page_size),
            vec![CacheConfig::l1d(), CacheConfig::l2(), CacheConfig::llc()],
        )
    }

    /// Builds a custom hierarchy. `levels` are ordered nearest-first.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    pub fn new(tlb: TlbConfig, levels: Vec<CacheConfig>) -> Self {
        assert!(!levels.is_empty(), "at least one cache level required");
        Self {
            page_size: tlb.page_size,
            tlb: Tlb::new(tlb),
            levels: levels.into_iter().map(Cache::new).collect(),
            touched_pages: HashSet::new(),
            stall_cycles: 0,
            ram_reads_tlb_miss: 0,
            accesses: 0,
        }
    }

    /// Simulates one data access at `vaddr`, charging translation and
    /// cache-walk latency to the stall counter.
    pub fn access(&mut self, vaddr: u64) {
        self.accesses += 1;
        // 1. Translation.
        let tlb_hit = self.tlb.access(vaddr);
        if !tlb_hit {
            let page = vaddr >> self.page_size.shift();
            if self.touched_pages.insert(page) {
                // First touch: minor page fault, kernel fills the PTE.
                // Charged as a fixed 1500-cycle trap.
                self.stall_cycles += 1500;
            }
            // Page-table walk: one dependent memory access per level. We
            // model walk entries as cached in L2 by address-mixing the
            // page number; a cold walk reads RAM.
            for level in 0..self.page_size.walk_levels() {
                let pte_addr = 0x8000_0000_0000u64
                    ^ (page << 6).rotate_left(level * 9)
                    ^ ((level as u64) << 40);
                let (cycles, hit_level) = self.charge_cache_walk(pte_addr);
                self.stall_cycles += cycles;
                if hit_level.is_none() {
                    self.ram_reads_tlb_miss += 1;
                }
            }
        }
        // 2. Data access through the cache hierarchy.
        let (cycles, _) = self.charge_cache_walk(vaddr);
        self.stall_cycles += cycles;
    }

    /// Walks the cache levels; returns (latency cycles, Some(level) that
    /// hit or None for RAM).
    fn charge_cache_walk(&mut self, addr: u64) -> (u64, Option<usize>) {
        let mut cycles = 0;
        for (i, cache) in self.levels.iter_mut().enumerate() {
            cycles += cache.config().hit_cycles;
            if cache.access(addr) {
                return (cycles, Some(i));
            }
        }
        (cycles + RAM_CYCLES, None)
    }

    /// Produces the report, charging `compute_cycles` of useful work
    /// against the accumulated stalls (the Figure 6 denominator).
    pub fn report(&self, compute_cycles: u64) -> MemReport {
        let tlb = self.tlb.stats();
        let total = compute_cycles + self.stall_cycles;
        let ptw_cycles: u64 = tlb.walk_accesses * self.levels[0].config().hit_cycles;
        let mut rates = [0.0f64; 3];
        for (i, c) in self.levels.iter().enumerate().take(3) {
            rates[i] = c.stats().miss_rate();
        }
        MemReport {
            dtlb_miss_rate: tlb.miss_rate(),
            ptw_cycle_fraction: if total == 0 {
                0.0
            } else {
                (ptw_cycles.min(total)) as f64 / total as f64
            },
            ram_reads_tlb_miss: self.ram_reads_tlb_miss,
            page_faults: self.touched_pages.len() as u64,
            cache_miss_rates: rates,
            memory_bound_fraction: if total == 0 {
                0.0
            } else {
                self.stall_cycles as f64 / total as f64
            },
            total_cycles: total,
        }
    }

    /// Number of simulated accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Clears all state and counters.
    pub fn reset(&mut self) {
        self.tlb.reset();
        for c in &mut self.levels {
            c.reset();
        }
        self.touched_pages.clear();
        self.stall_cycles = 0;
        self.ram_reads_tlb_miss = 0;
        self.accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strided(sim: &mut MemoryHierarchy, n: u64, stride: u64) {
        for i in 0..n {
            sim.access(i * stride);
        }
    }

    #[test]
    fn hugepages_cut_dtlb_misses() {
        // The paper's Table 4 headline: 4 KB pages → 5.12% dTLB miss rate,
        // 2 MB pages → 0.25%. Reproduce the direction with a strided sweep
        // over a 256 MiB working set.
        let mut small = MemoryHierarchy::typical_server(PageSize::Kb4);
        let mut huge = MemoryHierarchy::typical_server(PageSize::Mb2);
        for _ in 0..2 {
            strided(&mut small, 200_000, 1339);
            strided(&mut huge, 200_000, 1339);
        }
        let rs = small.report(1_000_000);
        let rh = huge.report(1_000_000);
        assert!(
            rs.dtlb_miss_rate > 5.0 * rh.dtlb_miss_rate,
            "4KB {} vs 2MB {}",
            rs.dtlb_miss_rate,
            rh.dtlb_miss_rate
        );
    }

    #[test]
    fn hugepages_cut_page_faults() {
        let mut small = MemoryHierarchy::typical_server(PageSize::Kb4);
        let mut huge = MemoryHierarchy::typical_server(PageSize::Mb2);
        strided(&mut small, 100_000, 4096);
        strided(&mut huge, 100_000, 4096);
        let rs = small.report(0);
        let rh = huge.report(0);
        assert!(rs.page_faults > 100 * rh.page_faults);
    }

    #[test]
    fn locality_reduces_memory_bound_fraction() {
        let mut local = MemoryHierarchy::typical_server(PageSize::Kb4);
        let mut scattered = MemoryHierarchy::typical_server(PageSize::Kb4);
        // Local: repeatedly walk an 8 KiB buffer. Scattered: jump wildly.
        for round in 0..50u64 {
            for i in 0..1000u64 {
                local.access((i * 8) % 8192);
                scattered.access((round * 1000 + i).wrapping_mul(0x9E3779B97F4A7C15) % (1 << 32));
            }
        }
        let compute = 500_000;
        let rl = local.report(compute);
        let rs = scattered.report(compute);
        assert!(
            rs.memory_bound_fraction > 2.0 * rl.memory_bound_fraction,
            "scattered {} vs local {}",
            rs.memory_bound_fraction,
            rl.memory_bound_fraction
        );
    }

    #[test]
    fn report_fields_are_sane() {
        let mut sim = MemoryHierarchy::typical_server(PageSize::Kb4);
        strided(&mut sim, 10_000, 64);
        let r = sim.report(100_000);
        assert!((0.0..=1.0).contains(&r.dtlb_miss_rate));
        assert!((0.0..=1.0).contains(&r.memory_bound_fraction));
        assert!((0.0..=1.0).contains(&r.ptw_cycle_fraction));
        for m in r.cache_miss_rates {
            assert!((0.0..=1.0).contains(&m));
        }
        assert!(r.total_cycles >= 100_000);
        assert_eq!(sim.accesses(), 10_000);
    }

    #[test]
    fn zero_compute_cycles_does_not_divide_by_zero() {
        let sim = MemoryHierarchy::typical_server(PageSize::Kb4);
        let r = sim.report(0);
        assert_eq!(r.memory_bound_fraction, 0.0);
        assert_eq!(r.total_cycles, 0);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut sim = MemoryHierarchy::typical_server(PageSize::Kb4);
        strided(&mut sim, 1000, 4096);
        sim.reset();
        assert_eq!(sim.accesses(), 0);
        let r = sim.report(0);
        assert_eq!(r.page_faults, 0);
        assert_eq!(r.ram_reads_tlb_miss, 0);
    }

    #[test]
    #[should_panic(expected = "at least one cache level")]
    fn rejects_empty_hierarchy() {
        let _ = MemoryHierarchy::new(TlbConfig::typical_dtlb(PageSize::Kb4), vec![]);
    }
}
