//! The versioned request/response wire schema — `v1`.
//!
//! This is the service's public contract, versioned *independently* of
//! the snapshot byte format: [`API_VERSION`] names the JSON schema (and
//! the `/v1/` URL prefix), while the snapshot's own version number only
//! governs what model files a build can load. A deployment can bump one
//! without touching the other.
//!
//! ```text
//! POST /v1/predict           single:  {"indices":[u32...],"values":[f32...],"top_k":k?}
//!                            batch:   {"batch":[{"indices":[...],"values":[...]},...],"top_k":k?}
//!   → 200 {"api_version":1,"epoch":e,"predictions":[{"classes":[...],"scores":[...],"latency_us":n},...]}
//! any error
//!   → 4xx/5xx {"api_version":1,"error":{"code":"...","message":"..."}}
//! ```
//!
//! Scores cross the wire through shortest-round-trip decimal formatting
//! (see [`crate::json::push_f32`]), so a served score equals the
//! in-process `f32` bit-for-bit after decode.

use slide_data::SparseVector;

use crate::engine::Prediction;
use crate::error::ServeError;
use crate::json::{self, Json};

/// Version of the request/response JSON schema (also the `/v1` URL
/// prefix). Independent of the snapshot format version.
pub const API_VERSION: u32 = 1;

/// Largest number of inputs one `batch` request may carry.
pub const MAX_WIRE_BATCH: usize = 4096;

/// A decoded `/v1/predict` request body.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// The request's inputs: one for a single-input body, any number for
    /// a `batch` body.
    pub inputs: Vec<SparseVector>,
    /// Per-request `top_k` override; `None` means the engine default.
    pub top_k: Option<usize>,
}

/// One answered input on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePrediction {
    /// Ranked classes, best first.
    pub classes: Vec<u32>,
    /// Scores parallel to `classes`.
    pub scores: Vec<f32>,
    /// Engine-side compute latency, microseconds.
    pub latency_us: u64,
}

impl From<&Prediction> for WirePrediction {
    fn from(p: &Prediction) -> Self {
        let items = p.topk.items();
        Self {
            classes: items.iter().map(|&(c, _)| c).collect(),
            scores: items.iter().map(|&(_, s)| s).collect(),
            latency_us: p.latency.as_micros() as u64,
        }
    }
}

/// A `/v1/predict` response body.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictResponse {
    /// The model epoch that answered (see
    /// [`crate::handle::EngineHandle`]).
    pub epoch: u64,
    /// One prediction per request input, in order.
    pub predictions: Vec<WirePrediction>,
}

fn bad(message: impl Into<String>) -> ServeError {
    ServeError::BadRequest {
        message: message.into(),
    }
}

fn decode_one_input(v: &Json, what: &str) -> Result<SparseVector, ServeError> {
    let indices = v
        .get("indices")
        .ok_or_else(|| bad(format!("{what}: missing \"indices\"")))?
        .as_array()
        .ok_or_else(|| bad(format!("{what}: \"indices\" must be an array")))?;
    let values = v
        .get("values")
        .ok_or_else(|| bad(format!("{what}: missing \"values\"")))?
        .as_array()
        .ok_or_else(|| bad(format!("{what}: \"values\" must be an array")))?;
    let mut idx = Vec::with_capacity(indices.len());
    for (i, x) in indices.iter().enumerate() {
        let n = x
            .as_u64()
            .filter(|&n| n <= u32::MAX as u64)
            .ok_or_else(|| bad(format!("{what}: indices[{i}] must be a u32")))?;
        idx.push(n as u32);
    }
    let mut vals = Vec::with_capacity(values.len());
    for (i, x) in values.iter().enumerate() {
        let f = x
            .as_f64()
            .ok_or_else(|| bad(format!("{what}: values[{i}] must be a number")))?;
        let v = json::f64_to_f32(f);
        // Finiteness is checked after the f32 narrowing: 1e39 is a
        // finite f64 but overflows f32, and an infinite input would
        // poison the scores into values JSON cannot carry back.
        if !v.is_finite() {
            return Err(bad(format!("{what}: values[{i}] out of f32 range")));
        }
        vals.push(v);
    }
    SparseVector::from_unsorted_parts(idx, vals).map_err(|e| bad(format!("{what}: {e}")))
}

/// Decodes a `/v1/predict` request body.
///
/// # Errors
///
/// Returns [`ServeError::BadRequest`] on malformed JSON, a missing or
/// mistyped field, or an oversized batch.
pub fn decode_predict_request(body: &str) -> Result<PredictRequest, ServeError> {
    let v = json::parse(body).map_err(|e| bad(format!("invalid json: {e}")))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(bad("request body must be a JSON object"));
    }
    let top_k = match v.get("top_k") {
        None | Some(Json::Null) => None,
        Some(t) => {
            let n = t
                .as_u64()
                .ok_or_else(|| bad("\"top_k\" must be a non-negative integer"))?;
            Some(usize::try_from(n).map_err(|_| bad("\"top_k\" out of range"))?)
        }
    };
    let inputs = match v.get("batch") {
        Some(batch) => {
            let items = batch
                .as_array()
                .ok_or_else(|| bad("\"batch\" must be an array"))?;
            if items.is_empty() {
                // An empty batch has no per-input validation to run, so
                // accepting it would let an invalid top_k (or anything
                // else checked per input) slip through with a 200.
                return Err(bad("\"batch\" must not be empty"));
            }
            if items.len() > MAX_WIRE_BATCH {
                return Err(bad(format!(
                    "batch of {} exceeds the limit of {MAX_WIRE_BATCH}",
                    items.len()
                )));
            }
            items
                .iter()
                .enumerate()
                .map(|(i, item)| decode_one_input(item, &format!("batch[{i}]")))
                .collect::<Result<Vec<_>, _>>()?
        }
        None => vec![decode_one_input(&v, "request")?],
    };
    Ok(PredictRequest { inputs, top_k })
}

/// Encodes a `/v1/predict` request body — the client half of the
/// protocol. A single input encodes as the single form; anything else as
/// the batch form.
pub fn encode_predict_request(req: &PredictRequest) -> String {
    let mut out = String::new();
    out.push('{');
    if req.inputs.len() == 1 {
        push_input_fields(&mut out, &req.inputs[0]);
    } else {
        out.push_str("\"batch\":[");
        for (i, input) in req.inputs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_input_fields(&mut out, input);
            out.push('}');
        }
        out.push(']');
    }
    if let Some(k) = req.top_k {
        out.push_str(&format!(",\"top_k\":{k}"));
    }
    out.push('}');
    out
}

fn push_input_fields(out: &mut String, input: &SparseVector) {
    out.push_str("\"indices\":[");
    for (i, &idx) in input.indices().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&idx.to_string());
    }
    out.push_str("],\"values\":[");
    for (i, &v) in input.values().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::push_f32(out, v);
    }
    out.push(']');
}

/// Encodes a `/v1/predict` response body.
pub fn encode_predict_response(resp: &PredictResponse) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"api_version\":{API_VERSION},\"epoch\":{},\"predictions\":[",
        resp.epoch
    ));
    for (i, p) in resp.predictions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"classes\":[");
        for (j, c) in p.classes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("],\"scores\":[");
        for (j, &s) in p.scores.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json::push_f32(&mut out, s);
        }
        out.push_str(&format!("],\"latency_us\":{}}}", p.latency_us));
    }
    out.push_str("]}");
    out
}

/// Decodes a `/v1/predict` response body — the client half of the
/// protocol (and how the end-to-end test pins bit-identity).
///
/// # Errors
///
/// Returns [`ServeError::BadRequest`] on malformed JSON or a schema
/// mismatch (including an unknown `api_version`).
pub fn decode_predict_response(body: &str) -> Result<PredictResponse, ServeError> {
    let v = json::parse(body).map_err(|e| bad(format!("invalid response json: {e}")))?;
    let version = v
        .get("api_version")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("response missing \"api_version\""))?;
    if version != API_VERSION as u64 {
        return Err(bad(format!("unsupported api_version {version}")));
    }
    let epoch = v
        .get("epoch")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("response missing \"epoch\""))?;
    let predictions = v
        .get("predictions")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("response missing \"predictions\""))?
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let classes = p
                .get("classes")
                .and_then(Json::as_array)
                .ok_or_else(|| bad(format!("predictions[{i}] missing \"classes\"")))?
                .iter()
                .map(|c| {
                    c.as_u64()
                        .filter(|&n| n <= u32::MAX as u64)
                        .map(|n| n as u32)
                        .ok_or_else(|| bad(format!("predictions[{i}]: class must be a u32")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let scores = p
                .get("scores")
                .and_then(Json::as_array)
                .ok_or_else(|| bad(format!("predictions[{i}] missing \"scores\"")))?
                .iter()
                .map(|s| {
                    s.as_f64()
                        .map(json::f64_to_f32)
                        .ok_or_else(|| bad(format!("predictions[{i}]: score must be a number")))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let latency_us = p.get("latency_us").and_then(Json::as_u64).unwrap_or(0);
            Ok(WirePrediction {
                classes,
                scores,
                latency_us,
            })
        })
        .collect::<Result<Vec<_>, ServeError>>()?;
    Ok(PredictResponse { epoch, predictions })
}

/// Encodes the wire `ErrorBody` for a [`ServeError`].
pub fn encode_error_body(e: &ServeError) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"api_version\":{API_VERSION},\"error\":{{\"code\":"
    ));
    json::push_escaped(&mut out, e.code());
    out.push_str(",\"message\":");
    json::push_escaped(&mut out, &e.to_string());
    out.push_str("}}");
    out
}

/// Decodes a wire `ErrorBody` into `(code, message)`, tolerating a
/// missing or foreign body (both fields default to empty).
pub fn decode_error_body(body: &str) -> (String, String) {
    let Ok(v) = json::parse(body) else {
        return (String::new(), String::new());
    };
    let code = v
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let message = v
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    (code, message)
}

/// Builds the [`PredictResponse`] for a batch of engine answers.
pub fn response_from_predictions(epoch: u64, predictions: &[Prediction]) -> PredictResponse {
    PredictResponse {
        epoch,
        predictions: predictions.iter().map(WirePrediction::from).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_request_round_trip() {
        let req = PredictRequest {
            inputs: vec![SparseVector::from_pairs([(3, 1.5), (10, -0.25)])],
            top_k: Some(4),
        };
        let body = encode_predict_request(&req);
        assert_eq!(decode_predict_request(&body).unwrap(), req);
        // Hand-written client form with unsorted indices also decodes.
        let decoded =
            decode_predict_request(r#"{"indices":[10,3],"values":[-0.25,1.5],"top_k":4}"#).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn batch_request_round_trip() {
        let req = PredictRequest {
            inputs: vec![
                SparseVector::from_pairs([(0, 1.0)]),
                SparseVector::from_pairs([(2, 0.5), (7, 2.0)]),
                SparseVector::new(),
            ],
            top_k: None,
        };
        let body = encode_predict_request(&req);
        assert_eq!(decode_predict_request(&body).unwrap(), req);
    }

    #[test]
    fn malformed_requests_are_typed_bad_request() {
        for body in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"values":[1.0]}"#,
            r#"{"indices":"x","values":[1.0]}"#,
            r#"{"indices":[1.5],"values":[1.0]}"#,
            r#"{"indices":[-1],"values":[1.0]}"#,
            r#"{"indices":[4294967296],"values":[1.0]}"#,
            r#"{"indices":[1],"values":["x"]}"#,
            r#"{"indices":[1],"values":[1e999]}"#,
            r#"{"indices":[1],"values":[1e39]}"#,
            r#"{"indices":[1,2],"values":[1.0]}"#,
            r#"{"indices":[1],"values":[1.0],"top_k":-2}"#,
            r#"{"batch":{"indices":[1],"values":[1.0]}}"#,
            r#"{"batch":[{"indices":[1]}]}"#,
            // An empty batch would dodge every per-input validation
            // (e.g. top_k bounds), so it is rejected outright.
            r#"{"batch":[]}"#,
            r#"{"batch":[],"top_k":0}"#,
        ] {
            assert!(
                matches!(
                    decode_predict_request(body),
                    Err(ServeError::BadRequest { .. })
                ),
                "accepted {body:?}"
            );
        }
    }

    #[test]
    fn oversized_batch_rejected() {
        let mut body = String::from("{\"batch\":[");
        for i in 0..=MAX_WIRE_BATCH {
            if i > 0 {
                body.push(',');
            }
            body.push_str("{\"indices\":[0],\"values\":[1.0]}");
        }
        body.push_str("]}");
        assert!(matches!(
            decode_predict_request(&body),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn response_round_trip_is_bit_exact() {
        let resp = PredictResponse {
            epoch: 7,
            predictions: vec![
                WirePrediction {
                    classes: vec![12, 5, 900],
                    scores: vec![1.000_000_1, -2.5e-7, std::f32::consts::E],
                    latency_us: 42,
                },
                WirePrediction {
                    classes: vec![],
                    scores: vec![],
                    latency_us: 0,
                },
            ],
        };
        let body = encode_predict_response(&resp);
        let decoded = decode_predict_response(&body).unwrap();
        assert_eq!(decoded.epoch, 7);
        assert_eq!(decoded.predictions.len(), 2);
        for (a, b) in resp.predictions.iter().zip(&decoded.predictions) {
            assert_eq!(a.classes, b.classes);
            assert_eq!(a.latency_us, b.latency_us);
            for (x, y) in a.scores.iter().zip(&b.scores) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn unknown_api_version_rejected() {
        let body = r#"{"api_version":2,"epoch":1,"predictions":[]}"#;
        assert!(decode_predict_response(body).is_err());
    }

    #[test]
    fn error_body_round_trip() {
        let e = ServeError::FeatureIndexOutOfRange {
            needed_dim: 100,
            input_dim: 64,
        };
        let body = encode_error_body(&e);
        let (code, message) = decode_error_body(&body);
        assert_eq!(code, "feature_index_out_of_range");
        assert!(message.contains("100"));
        assert_eq!(decode_error_body("garbage"), (String::new(), String::new()));
    }
}
