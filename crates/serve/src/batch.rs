//! Micro-batching request queue over a worker thread pool.
//!
//! Concurrent callers enqueue `(features, k)` jobs; worker threads sleep
//! on a condvar and, on wakeup, *drain up to `max_batch` jobs in one
//! critical section*. That aggregation is the point of micro-batching:
//! under load, one lock acquisition and one wakeup amortize over a whole
//! batch, and the drained jobs score through the fused batch kernels
//! (each candidate weight row streams through the cache once for the
//! whole batch). Each caller receives its answer through a private reply
//! — a channel for in-process callers, a callback for the event-driven
//! HTTP front-end — so requests complete independently: a batch is an
//! execution detail, not an API contract.
//!
//! The server runs over either a pinned [`ServingEngine`]
//! ([`BatchServer::start`]) or a hot-reloadable [`EngineHandle`]
//! ([`BatchServer::over_handle`]). In handle mode each drain reads the
//! `(engine, epoch)` pair **inside** the queue critical section, so the
//! epoch a job is answered under is ordered by dequeue order — a
//! connection that receives its responses in request order can never
//! observe the model epoch move backwards.
//!
//! The queue is optionally bounded ([`BatchOptions::queue_cap`]): a full
//! queue rejects new jobs with [`ServeError::Overloaded`] *before* they
//! cost any compute, which the HTTP layer surfaces as `429 Retry-After`.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use slide_data::SparseVector;

use crate::engine::{Prediction, ServingEngine};
use crate::error::ServeError;
use crate::fault::FaultPlan;
use crate::handle::EngineHandle;

/// The retry delay a full queue advertises, seconds. One second is a
/// round trip through a worker drain with plenty of slack: a queue that
/// stays full for longer is genuinely saturated, not just bursty.
pub const RETRY_AFTER_SECS: u64 = 1;

/// Number of coalesced-batch-size histogram buckets
/// (`1, 2, 3-4, 5-8, 9-16, 17-32, 33+`).
pub const BATCH_HIST_BUCKETS: usize = 7;

/// Load-adaptive graceful-degradation policy for a [`BatchServer`].
///
/// When enabled, each worker drain measures the worst queue wait of the
/// jobs it picked up and votes through a streak-based hysteresis: after
/// [`DegradeOptions::step_up_after`] consecutive drains waiting past
/// [`DegradeOptions::high_wait`], the pool steps its degradation level
/// up (to at most [`DegradeOptions::max_level`]); after
/// [`DegradeOptions::step_down_after`] consecutive drains below
/// [`DegradeOptions::low_wait`], it steps back down. Each level answers
/// under a stepwise-halved LSH [`slide_lsh::QueryBudget`]
/// ([`slide_lsh::QueryBudget::degraded`]) — fewer tables probed, fewer
/// candidates scored — so latency stays bounded at slightly lower
/// recall, recovering to the full budget when pressure clears.
///
/// **Off by default**: degraded answers are intentionally *different*
/// from full-budget answers, so shrinking the budget must be an explicit
/// operator decision, never a surprise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeOptions {
    /// Master switch; everything else is inert while false.
    pub enabled: bool,
    /// Queue wait above which a drain votes to step the level up.
    pub high_wait: Duration,
    /// Queue wait below which a drain votes to step the level down.
    pub low_wait: Duration,
    /// Deepest degradation level (each level halves the budget again).
    pub max_level: u32,
    /// Consecutive high-wait drains before stepping up.
    pub step_up_after: u32,
    /// Consecutive low-wait drains before stepping down.
    pub step_down_after: u32,
    /// Deadline shed: a job that already waited longer than this when a
    /// worker picks it up is answered [`ServeError::Overloaded`] without
    /// any compute — the client was going to time out anyway, so the
    /// cycles go to requests that can still make their deadline. `None`
    /// (the default) sheds nothing.
    pub shed_after: Option<Duration>,
}

impl Default for DegradeOptions {
    fn default() -> Self {
        Self {
            enabled: false,
            high_wait: Duration::from_millis(2),
            low_wait: Duration::from_micros(500),
            max_level: 3,
            step_up_after: 2,
            step_down_after: 8,
            shed_after: None,
        }
    }
}

impl DegradeOptions {
    /// Enables/disables adaptive degradation (builder style).
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Sets the step-up / step-down wait watermarks (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn with_watermarks(mut self, low: Duration, high: Duration) -> Self {
        assert!(low <= high, "low watermark must not exceed high");
        self.low_wait = low;
        self.high_wait = high;
        self
    }

    /// Sets the deepest degradation level (builder style).
    pub fn with_max_level(mut self, max_level: u32) -> Self {
        self.max_level = max_level;
        self
    }

    /// Sets the up/down streak lengths (builder style).
    ///
    /// # Panics
    ///
    /// Panics if either streak is zero.
    pub fn with_streaks(mut self, step_up_after: u32, step_down_after: u32) -> Self {
        assert!(
            step_up_after > 0 && step_down_after > 0,
            "streaks must be positive"
        );
        self.step_up_after = step_up_after;
        self.step_down_after = step_down_after;
        self
    }

    /// Sets the deadline past which queued jobs are shed (builder
    /// style); `None` disables shedding.
    pub fn with_shed_after(mut self, shed_after: Option<Duration>) -> Self {
        self.shed_after = shed_after;
        self
    }
}

/// Sizing for a [`BatchServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Maximum jobs one worker drains per wakeup.
    pub max_batch: usize,
    /// Largest number of jobs the queue holds before new submissions are
    /// rejected with [`ServeError::Overloaded`]. `usize::MAX` (the
    /// default) means unbounded, preserving the blocking in-process API.
    pub queue_cap: usize,
    /// Load-adaptive degradation policy (off by default).
    pub degrade: DegradeOptions,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 16,
            queue_cap: usize::MAX,
            degrade: DegradeOptions::default(),
        }
    }
}

impl BatchOptions {
    /// Sets the worker count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "workers must be positive");
        self.workers = workers;
        self
    }

    /// Sets the per-wakeup batch cap (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }

    /// Bounds the admission queue (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `queue_cap == 0`.
    pub fn with_queue_cap(mut self, queue_cap: usize) -> Self {
        assert!(queue_cap > 0, "queue_cap must be positive");
        self.queue_cap = queue_cap;
        self
    }

    /// Sets the degradation policy (builder style).
    pub fn with_degrade(mut self, degrade: DegradeOptions) -> Self {
        self.degrade = degrade;
        self
    }
}

/// A completion callback: receives the result and the model epoch that
/// answered (1 for a pinned-engine server). Runs on the worker thread —
/// keep it cheap (the HTTP front-end just posts to an event-loop inbox).
pub(crate) type ReplyCallback = Box<dyn FnOnce(Result<Prediction, ServeError>, u64) + Send>;

enum Reply {
    Channel(mpsc::Sender<Result<Prediction, ServeError>>),
    Callback(ReplyCallback),
}

impl Reply {
    fn send(self, result: Result<Prediction, ServeError>, epoch: u64) {
        match self {
            // A dropped handle just discards the answer.
            Reply::Channel(tx) => {
                tx.send(result).ok();
            }
            Reply::Callback(f) => f(result, epoch),
        }
    }
}

struct Job {
    features: SparseVector,
    k: usize,
    enqueued: Instant,
    reply: Reply,
}

#[derive(Default)]
struct BatchCounters {
    requests: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    largest_batch: AtomicU64,
    total_queue_ns: AtomicU64,
    depth: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    worker_panics: AtomicU64,
    respawns: AtomicU64,
    degraded_requests: AtomicU64,
    hist: [AtomicU64; BATCH_HIST_BUCKETS],
}

/// The pool's shared degradation state: the active level plus the
/// hysteresis streak counters the drains vote through.
struct DegradeState {
    opts: DegradeOptions,
    level: AtomicU32,
    high_streak: AtomicU32,
    low_streak: AtomicU32,
}

impl DegradeState {
    fn new(opts: DegradeOptions) -> Self {
        Self {
            opts,
            level: AtomicU32::new(0),
            high_streak: AtomicU32::new(0),
            low_streak: AtomicU32::new(0),
        }
    }

    /// Feeds one drain's worst queue wait into the hysteresis and
    /// returns the level this drain should answer under. The
    /// read-modify-write is racy across workers by design — a missed or
    /// doubled vote only shifts a step by one drain, and the level
    /// itself moves one step at a time either way.
    fn observe(&self, worst_wait: Duration) -> u32 {
        if !self.opts.enabled {
            return 0;
        }
        if worst_wait >= self.opts.high_wait {
            self.low_streak.store(0, Ordering::Relaxed);
            if self.high_streak.fetch_add(1, Ordering::Relaxed) + 1 >= self.opts.step_up_after {
                self.high_streak.store(0, Ordering::Relaxed);
                let level = self.level.load(Ordering::Relaxed);
                if level < self.opts.max_level {
                    self.level.store(level + 1, Ordering::Relaxed);
                }
            }
        } else if worst_wait <= self.opts.low_wait {
            self.high_streak.store(0, Ordering::Relaxed);
            if self.low_streak.fetch_add(1, Ordering::Relaxed) + 1 >= self.opts.step_down_after {
                self.low_streak.store(0, Ordering::Relaxed);
                let level = self.level.load(Ordering::Relaxed);
                if level > 0 {
                    self.level.store(level - 1, Ordering::Relaxed);
                }
            }
        } else {
            // Between the watermarks: hold the level, reset both streaks.
            self.high_streak.store(0, Ordering::Relaxed);
            self.low_streak.store(0, Ordering::Relaxed);
        }
        self.level.load(Ordering::Relaxed)
    }
}

fn hist_bucket(n: usize) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        _ => 6,
    }
}

/// Where drains take their engine from.
enum Source {
    /// One engine for the server's lifetime.
    Fixed(Arc<ServingEngine>),
    /// Follow an [`EngineHandle`] — each drain answers with whatever
    /// engine the handle holds at dequeue time.
    Handle(Arc<EngineHandle>),
}

impl Source {
    fn current(&self) -> (Arc<ServingEngine>, u64) {
        match self {
            Source::Fixed(e) => (Arc::clone(e), 1),
            Source::Handle(h) => h.current(),
        }
    }
}

struct Shared {
    source: Source,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_cap: usize,
    counters: BatchCounters,
    degrade: DegradeState,
    /// Injected-fault switchboard for chaos drills; `None` (the default)
    /// costs one pointer check per drain.
    faults: Option<Arc<FaultPlan>>,
}

/// Queue + throughput statistics of a running [`BatchServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Requests completed.
    pub requests: u64,
    /// Worker wakeups that processed at least one job.
    pub batches: u64,
    /// Mean jobs per processed batch.
    pub mean_batch: f64,
    /// Largest single batch drained.
    pub largest_batch: u64,
    /// Mean time a request waited in the queue before a worker picked it
    /// up.
    pub mean_queue_wait: Duration,
    /// Jobs currently waiting in the queue (gauge, sampled at the last
    /// enqueue/drain).
    pub queue_depth: u64,
    /// Submissions rejected by the queue bound.
    pub rejected: u64,
    /// Jobs shed at drain time because they outwaited
    /// [`DegradeOptions::shed_after`] (answered `Overloaded`, no
    /// compute spent).
    pub shed: u64,
    /// Worker panics caught (injected or real); each one answered its
    /// whole drain with typed `worker_panicked` errors.
    pub worker_panics: u64,
    /// Replacement workers the supervisor spawned after panics.
    pub worker_respawns: u64,
    /// The active degradation level (gauge; 0 = full budget).
    pub degradation_level: u32,
    /// Requests answered under a degraded (level > 0) budget.
    pub degraded_requests: u64,
    /// Drained-batch-size histogram over buckets
    /// `1, 2, 3-4, 5-8, 9-16, 17-32, 33+`.
    pub batch_hist: [u64; BATCH_HIST_BUCKETS],
}

/// Handle to one in-flight request; resolves to its [`Prediction`].
#[derive(Debug)]
pub struct RequestHandle {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl RequestHandle {
    /// Blocks until the prediction arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ServerShutdown`] if the worker pool shut
    /// down (or a worker died) before answering — a dead pool is a typed
    /// error, never a silent non-answer — and forwards any typed error
    /// the engine returned for this request.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ServerShutdown)?
    }
}

/// A micro-batching server over a shared [`ServingEngine`] (or a
/// hot-reloadable [`EngineHandle`]).
///
/// Submitting is non-blocking ([`BatchServer::submit`] returns a
/// [`RequestHandle`]); [`BatchServer::predict`] is the blocking
/// convenience. Dropping the server drains nothing: workers finish the
/// jobs already queued, then exit.
pub struct BatchServer {
    shared: Arc<Shared>,
    /// Live worker handles. Behind a mutex because the supervisor pushes
    /// replacements while the pool runs; shutdown joins the supervisor
    /// first, so draining this vec afterwards races with nobody.
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    supervisor: Option<JoinHandle<()>>,
    sup_tx: mpsc::Sender<SupMsg>,
}

/// What workers and shutdown tell the supervisor.
enum SupMsg {
    /// A worker exited on a panic; spawn a replacement.
    Respawn,
    /// The pool is shutting down; stop supervising.
    Stop,
}

impl std::fmt::Debug for BatchServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let workers = self
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len();
        f.debug_struct("BatchServer")
            .field("workers", &workers)
            .finish()
    }
}

impl BatchServer {
    /// Starts `options.workers` worker threads over a pinned `engine`.
    pub fn start(engine: Arc<ServingEngine>, options: BatchOptions) -> Self {
        Self::start_with_source(Source::Fixed(engine), options, None)
    }

    /// [`BatchServer::start`] with a fault-injection plan attached for
    /// chaos drills.
    pub fn start_with_faults(
        engine: Arc<ServingEngine>,
        options: BatchOptions,
        faults: Arc<FaultPlan>,
    ) -> Self {
        Self::start_with_source(Source::Fixed(engine), options, Some(faults))
    }

    /// Starts the worker pool over a hot-reloadable handle: each drain
    /// answers with the handle's current engine, and replies carry the
    /// epoch that actually answered.
    pub fn over_handle(handle: Arc<EngineHandle>, options: BatchOptions) -> Self {
        Self::start_with_source(Source::Handle(handle), options, None)
    }

    /// [`BatchServer::over_handle`] with a fault-injection plan attached
    /// for chaos drills.
    pub fn over_handle_with_faults(
        handle: Arc<EngineHandle>,
        options: BatchOptions,
        faults: Arc<FaultPlan>,
    ) -> Self {
        Self::start_with_source(Source::Handle(handle), options, Some(faults))
    }

    fn start_with_source(
        source: Source,
        options: BatchOptions,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        assert!(options.workers > 0, "workers must be positive");
        assert!(options.max_batch > 0, "max_batch must be positive");
        assert!(options.queue_cap > 0, "queue_cap must be positive");
        let shared = Arc::new(Shared {
            source,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_cap: options.queue_cap,
            counters: BatchCounters::default(),
            degrade: DegradeState::new(options.degrade),
            faults,
        });
        let (sup_tx, sup_rx) = mpsc::channel::<SupMsg>();
        let workers = Arc::new(Mutex::new(
            (0..options.workers)
                .map(|_| spawn_worker(Arc::clone(&shared), options.max_batch, sup_tx.clone()))
                .collect::<Vec<_>>(),
        ));
        // The supervisor respawns panicked workers so the pool never
        // silently shrinks. It owns a sender clone (sup_tx, kept in the
        // server and handed to every replacement), so the channel stays
        // open until shutdown sends an explicit Stop.
        let supervisor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            let sup_tx = sup_tx.clone();
            let max_batch = options.max_batch;
            std::thread::spawn(move || {
                while let Ok(msg) = sup_rx.recv() {
                    match msg {
                        SupMsg::Stop => break,
                        SupMsg::Respawn => {
                            if shared.shutdown.load(Ordering::SeqCst) {
                                continue;
                            }
                            shared.counters.respawns.fetch_add(1, Ordering::Relaxed);
                            let replacement =
                                spawn_worker(Arc::clone(&shared), max_batch, sup_tx.clone());
                            workers
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .push(replacement);
                        }
                    }
                }
            })
        };
        Self {
            shared,
            workers,
            supervisor: Some(supervisor),
            sup_tx,
        }
    }

    /// Enqueues a request for the engine's configured `top_k`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FeatureIndexOutOfRange`] if the request's
    /// feature indices do not fit the network's input dimension, or
    /// [`ServeError::Overloaded`] if the queue bound is hit.
    pub fn submit(&self, features: SparseVector) -> Result<RequestHandle, ServeError> {
        let k = self.engine().default_top_k();
        self.submit_k(features, k)
    }

    /// Enqueues a request for an explicit `k`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidTopK`] if `k == 0`, or
    /// [`ServeError::FeatureIndexOutOfRange`] on an out-of-range feature
    /// index — both checked on the submitting thread, so a malformed
    /// request is rejected before it can ever reach a worker — or
    /// [`ServeError::Overloaded`] if the queue bound is hit.
    pub fn submit_k(&self, features: SparseVector, k: usize) -> Result<RequestHandle, ServeError> {
        self.engine().validate_request(&features, k)?;
        let (reply, rx) = mpsc::channel();
        self.enqueue_all(vec![(features, k, Reply::Channel(reply))])?;
        Ok(RequestHandle { rx })
    }

    /// Enqueues already-validated callback jobs, all or nothing: either
    /// every job fits under the queue bound (one critical section, so
    /// the jobs of one wire request stay contiguous in the queue) or the
    /// whole set is rejected. Validation is the caller's job — the HTTP
    /// layer validates against the current engine before building
    /// callbacks (workers re-validate anyway; a model swapped mid-queue
    /// answers with its own typed error).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] if the jobs do not fit; no job
    /// was enqueued and no callback will run.
    pub(crate) fn submit_callbacks(
        &self,
        jobs: Vec<(SparseVector, usize, ReplyCallback)>,
    ) -> Result<(), ServeError> {
        self.enqueue_all(
            jobs.into_iter()
                .map(|(f, k, cb)| (f, k, Reply::Callback(cb)))
                .collect(),
        )
    }

    fn enqueue_all(&self, jobs: Vec<(SparseVector, usize, Reply)>) -> Result<(), ServeError> {
        let n = jobs.len();
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if q.len() + n > self.shared.queue_cap {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(n as u64, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    retry_after_secs: RETRY_AFTER_SECS,
                });
            }
            let enqueued = Instant::now();
            for (features, k, reply) in jobs {
                q.push_back(Job {
                    features,
                    k,
                    enqueued,
                    reply,
                });
            }
            self.shared
                .counters
                .depth
                .store(q.len() as u64, Ordering::Relaxed);
        }
        if n > 1 {
            self.shared.available.notify_all();
        } else {
            self.shared.available.notify_one();
        }
        Ok(())
    }

    /// Blocking request: enqueue, wait, return the prediction.
    ///
    /// # Errors
    ///
    /// Returns the submit-time validation error, or
    /// [`ServeError::ServerShutdown`] if the pool died before answering.
    pub fn predict(&self, features: SparseVector) -> Result<Prediction, ServeError> {
        self.submit(features)?.wait()
    }

    /// The engine currently behind this server (in handle mode, the
    /// handle's live engine at call time).
    pub fn engine(&self) -> Arc<ServingEngine> {
        self.shared.source.current().0
    }

    /// A snapshot of the batching statistics.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        let requests = c.requests.load(Ordering::Relaxed);
        let batches = c.batches.load(Ordering::Relaxed);
        let batched = c.batched_jobs.load(Ordering::Relaxed);
        let mut batch_hist = [0u64; BATCH_HIST_BUCKETS];
        for (out, bucket) in batch_hist.iter_mut().zip(&c.hist) {
            *out = bucket.load(Ordering::Relaxed);
        }
        ServerStats {
            requests,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            mean_queue_wait: Duration::from_nanos(
                c.total_queue_ns
                    .load(Ordering::Relaxed)
                    .checked_div(requests)
                    .unwrap_or(0),
            ),
            queue_depth: c.depth.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            worker_respawns: c.respawns.load(Ordering::Relaxed),
            degradation_level: self.shared.degrade.level.load(Ordering::Relaxed),
            degraded_requests: c.degraded_requests.load(Ordering::Relaxed),
            batch_hist,
        }
    }

    /// The active degradation level (0 = serving the full budget).
    pub fn degradation_level(&self) -> u32 {
        self.shared.degrade.level.load(Ordering::Relaxed)
    }

    /// The configured queue bound (`usize::MAX` when unbounded).
    pub fn queue_cap(&self) -> usize {
        self.shared.queue_cap
    }

    /// Stops the workers after the queued jobs finish and joins them.
    pub fn shutdown(mut self) {
        self.join_all();
    }

    fn begin_shutdown(&self) {
        // Set the flag while holding the queue mutex: a worker that has
        // seen an empty queue but not yet parked on the condvar holds the
        // lock through that window, so the store-then-notify cannot slip
        // between its check and its wait (the classic lost wakeup).
        {
            let _q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        self.shared.available.notify_all();
        self.sup_tx.send(SupMsg::Stop).ok();
    }

    fn join_all(&mut self) {
        self.begin_shutdown();
        // Join the supervisor FIRST: after it exits nobody pushes new
        // worker handles, so draining the vec below is race-free. (A
        // panic racing the shutdown flag still answers its jobs with
        // typed errors; its Respawn message is ignored post-flag.)
        if let Some(s) = self.supervisor.take() {
            s.join().ok();
        }
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            h.join().ok();
        }
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.join_all();
    }
}

fn spawn_worker(
    shared: Arc<Shared>,
    max_batch: usize,
    exits: mpsc::Sender<SupMsg>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        if let WorkerExit::Panicked = worker_loop(&shared, max_batch) {
            exits.send(SupMsg::Respawn).ok();
        }
    })
}

/// Why a worker left its loop.
enum WorkerExit {
    /// Shutdown flag seen on an empty queue: a normal exit.
    Shutdown,
    /// A drain panicked (caught). The worker answered every affected job
    /// with [`ServeError::WorkerPanicked`] and exits so the supervisor
    /// replaces it with a thread whose scratch state is provably fresh.
    Panicked,
}

fn worker_loop(shared: &Shared, max_batch: usize) -> WorkerExit {
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    // Batched-scoring scratch is worker-lifetime (hidden activations,
    // candidate union, score matrix — all engine-independent: cleared
    // and refilled per drain), plus the per-batch staging buffers, so
    // the hot loop's only steady-state allocation is the k-slot result.
    let mut scratch = slide_core::inference::BatchScratch::default();
    let mut predictions: Vec<Prediction> = Vec::with_capacity(max_batch);
    let mut feats: Vec<SparseVector> = Vec::with_capacity(max_batch);
    let mut ks: Vec<usize> = Vec::with_capacity(max_batch);
    let mut replies: Vec<Reply> = Vec::with_capacity(max_batch);
    loop {
        // Drain up to max_batch jobs — and read the (engine, epoch) pair
        // — in one critical section. Drains are serialized by the queue
        // mutex and the epoch only ever grows, so dequeue order implies
        // epoch order: FIFO responses can never show an epoch rollback.
        let (engine, epoch);
        {
            let mut q = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if !q.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return WorkerExit::Shutdown;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            while batch.len() < max_batch {
                match q.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
            shared
                .counters
                .depth
                .store(q.len() as u64, Ordering::Relaxed);
            let (e, ep) = shared.source.current();
            engine = e;
            epoch = ep;
        }

        let c = &shared.counters;
        c.batches.fetch_add(1, Ordering::Relaxed);
        c.batched_jobs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        c.largest_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        c.hist[hist_bucket(batch.len())].fetch_add(1, Ordering::Relaxed);
        let mut worst_wait = Duration::ZERO;
        for job in &batch {
            let wait = job.enqueued.elapsed();
            worst_wait = worst_wait.max(wait);
            c.total_queue_ns
                .fetch_add(wait.as_nanos() as u64, Ordering::Relaxed);
        }
        let level = shared.degrade.observe(worst_wait);

        // Deadline shed: jobs that already outwaited the limit answer
        // Overloaded without compute — the saved cycles go to jobs that
        // can still make their deadline.
        if let Some(limit) = shared.degrade.opts.shed_after {
            let mut i = 0;
            while i < batch.len() {
                if batch[i].enqueued.elapsed() > limit {
                    let job = batch.remove(i);
                    c.shed.fetch_add(1, Ordering::Relaxed);
                    job.reply.send(
                        Err(ServeError::Overloaded {
                            retry_after_secs: RETRY_AFTER_SECS,
                        }),
                        epoch,
                    );
                } else {
                    i += 1;
                }
            }
            if batch.is_empty() {
                continue;
            }
        }

        // One relaxed load when a plan is attached, one pointer check
        // when not: injected panics fire after dequeue, before scoring —
        // exactly where a real scoring bug would.
        let injected_panic = shared
            .faults
            .as_ref()
            .is_some_and(|f| f.take_worker_panic());

        // Stage the jobs into worker-owned buffers with the replies held
        // OUTSIDE the panic guard: whatever happens inside scoring,
        // every reply is answered — a dropped callback reply would hang
        // its HTTP connection forever.
        feats.clear();
        ks.clear();
        replies.clear();
        for job in batch.drain(..) {
            feats.push(job.features);
            ks.push(job.k);
            replies.push(job.reply);
        }
        let degraded_selector = (level > 0).then(|| engine.degraded_selector(level));

        // The workspace is checked out per drain (it belongs to the
        // drain's engine — in handle mode a reload swaps the pool too);
        // one pool-mutex acquisition amortized over the whole batch.
        // Everything batch-sized routes through the fused shared-union
        // path (a batch-of-1 is bit-identical to a solo predict).
        let mut ws = engine.checkout_workspace();
        predictions.clear();
        let scored = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if injected_panic {
                // lint:allow(no-panic-paths): deliberate fault injection for
                // the panic-isolation tests, caught by the surrounding
                // catch_unwind.
                panic!("injected worker panic");
            }
            match &degraded_selector {
                Some(sel) => engine.predict_batch_in_with(
                    &mut ws,
                    &mut scratch,
                    &feats,
                    &ks,
                    &mut predictions,
                    sel,
                ),
                None => {
                    engine.predict_batch_in(&mut ws, &mut scratch, &feats, &ks, &mut predictions)
                }
            }
        }));
        match scored {
            Err(_) => {
                // The drain panicked. Answer every caught job with the
                // typed error, then exit so the supervisor replaces this
                // worker with one whose thread state is provably fresh.
                c.worker_panics.fetch_add(1, Ordering::Relaxed);
                for reply in replies.drain(..) {
                    reply.send(Err(ServeError::WorkerPanicked), epoch);
                }
                return WorkerExit::Panicked;
            }
            Ok(Ok(())) => {
                c.requests.fetch_add(feats.len() as u64, Ordering::Relaxed);
                if level > 0 {
                    c.degraded_requests
                        .fetch_add(feats.len() as u64, Ordering::Relaxed);
                }
                for (reply, prediction) in replies.drain(..).zip(predictions.drain(..)) {
                    reply.send(Ok(prediction), epoch);
                }
            }
            Ok(Err(_)) => {
                // Jobs are validated at submit, so a batch-level
                // rejection only happens when a hot reload swapped in a
                // model the queued jobs no longer fit; answer each job
                // individually (still under the panic guard) so every
                // caller gets its own typed result instead of a shared
                // error.
                feats.reverse();
                ks.reverse();
                replies.reverse();
                let mut panicked = false;
                while let (Some(features), Some(k), Some(reply)) =
                    (feats.pop(), ks.pop(), replies.pop())
                {
                    if panicked {
                        reply.send(Err(ServeError::WorkerPanicked), epoch);
                        continue;
                    }
                    let outcome =
                        std::panic::catch_unwind(AssertUnwindSafe(|| match &degraded_selector {
                            Some(sel) => engine.predict_in_with(&mut ws, &features, k, sel),
                            None => engine.predict_in(&mut ws, &features, k),
                        }));
                    match outcome {
                        Ok(result) => {
                            c.requests.fetch_add(1, Ordering::Relaxed);
                            if level > 0 {
                                c.degraded_requests.fetch_add(1, Ordering::Relaxed);
                            }
                            reply.send(result, epoch);
                        }
                        Err(_) => {
                            c.worker_panics.fetch_add(1, Ordering::Relaxed);
                            panicked = true;
                            reply.send(Err(ServeError::WorkerPanicked), epoch);
                        }
                    }
                }
                if panicked {
                    return WorkerExit::Panicked;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServeOptions, ServingEngine};
    use slide_core::config::{LshLayerConfig, NetworkConfig};
    use slide_core::Network;
    use slide_data::synth::{generate, SyntheticConfig};

    fn tiny_server(options: BatchOptions) -> (BatchServer, slide_data::synth::SyntheticData) {
        let data = generate(&SyntheticConfig::tiny().with_seed(8));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(9)
            .build()
            .unwrap();
        let engine = Arc::new(ServingEngine::new(
            Network::new(config).unwrap(),
            ServeOptions::default().with_top_k(3),
        ));
        (BatchServer::start(engine, options), data)
    }

    #[test]
    fn serves_queued_requests() {
        let (server, data) = tiny_server(BatchOptions::default());
        let handles: Vec<RequestHandle> = data
            .test
            .iter()
            .take(30)
            .map(|ex| server.submit(ex.features.clone()).unwrap())
            .collect();
        for h in handles {
            let p = h.wait().expect("answered");
            assert!(!p.topk.is_empty());
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 30);
        assert!(stats.batches >= 1);
        assert!(stats.mean_batch >= 1.0);
        assert!(stats.largest_batch >= 1);
        // The histogram saw every drain.
        assert_eq!(stats.batch_hist.iter().sum::<u64>(), stats.batches);
        server.shutdown();
    }

    #[test]
    fn batches_aggregate_under_backlog() {
        // A group enqueue lands all its jobs under ONE queue lock, so
        // the single worker's next drain must pick them up together —
        // deterministic coalescing, no timing luck required.
        let (server, data) = tiny_server(BatchOptions::default().with_workers(1).with_max_batch(8));
        let (tx, rx) = std::sync::mpsc::channel();
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                let tx = tx.clone();
                let cb: ReplyCallback = Box::new(move |result, _epoch| {
                    tx.send(result).ok();
                });
                (
                    data.test.examples()[i % data.test.len()].features.clone(),
                    3,
                    cb,
                )
            })
            .collect();
        server.submit_callbacks(jobs).unwrap();
        for _ in 0..8 {
            rx.recv().unwrap().expect("answered");
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 8);
        // All 8 were queued atomically with max_batch 8: one fused drain.
        assert!(stats.largest_batch > 1, "no batching observed: {stats:?}");
        assert!(stats.largest_batch <= 8);
        // Multi-job drains land in buckets past the first.
        assert!(stats.batch_hist[1..].iter().sum::<u64>() >= 1);
    }

    #[test]
    fn concurrent_submitters_all_get_answers() {
        let (server, data) = tiny_server(BatchOptions::default().with_workers(3));
        let server = Arc::new(server);
        let data = Arc::new(data);
        let submitters: Vec<_> = (0..6)
            .map(|t| {
                let server = Arc::clone(&server);
                let data = Arc::clone(&data);
                std::thread::spawn(move || {
                    for i in 0..20 {
                        let ex = &data.test.examples()[(t * 20 + i) % data.test.len()];
                        let p = server.predict(ex.features.clone()).unwrap();
                        assert!(p.topk.len() <= 3);
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        assert_eq!(server.stats().requests, 120);
        assert_eq!(server.engine().stats().requests, 120);
    }

    #[test]
    fn shutdown_drains_then_stops() {
        let (server, data) = tiny_server(BatchOptions::default().with_workers(2));
        let handles: Vec<RequestHandle> = data
            .test
            .iter()
            .take(10)
            .map(|ex| server.submit(ex.features.clone()).unwrap())
            .collect();
        server.shutdown();
        // Workers drain the queue before exiting, so every handle resolves.
        let answered = handles.into_iter().filter_map(|h| h.wait().ok()).count();
        assert_eq!(answered, 10);
    }

    #[test]
    fn malformed_submissions_are_rejected_on_the_submitting_thread() {
        let (server, data) = tiny_server(BatchOptions::default());
        let dim = server.engine().input_dim();
        let bad = SparseVector::from_pairs([(dim as u32 + 5, 1.0)]);
        assert!(matches!(
            server.submit(bad),
            Err(ServeError::FeatureIndexOutOfRange { .. })
        ));
        assert!(matches!(
            server.submit_k(data.test.examples()[0].features.clone(), 0),
            Err(ServeError::InvalidTopK { .. })
        ));
        // The pool is still healthy after rejections.
        let p = server.predict(data.test.examples()[0].features.clone());
        assert!(p.is_ok());
    }

    #[test]
    fn bounded_queue_rejects_with_overloaded() {
        // No workers can be zero, so saturate a 1-worker pool through a
        // cap of 2 with callback jobs that are free to construct.
        let (server, data) = tiny_server(
            BatchOptions::default()
                .with_workers(1)
                .with_max_batch(4)
                .with_queue_cap(2),
        );
        let ex = data.test.examples()[0].features.clone();
        // Sequential fill without a draining race is not guaranteed (a
        // worker may pop between pushes), so drive until a rejection is
        // observed or the attempt budget proves the bound never fired.
        let mut saw_reject = false;
        let mut handles = Vec::new();
        for _ in 0..2000 {
            match server.submit(ex.clone()) {
                Ok(h) => handles.push(h),
                Err(ServeError::Overloaded { retry_after_secs }) => {
                    assert_eq!(retry_after_secs, RETRY_AFTER_SECS);
                    saw_reject = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_reject, "queue bound never rejected");
        assert!(server.stats().rejected >= 1);
        // Accepted jobs still answer.
        for h in handles {
            h.wait().unwrap();
        }
    }

    #[test]
    fn handle_mode_reports_the_epoch_that_answered() {
        let data = generate(&SyntheticConfig::tiny().with_seed(8));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(9)
            .build()
            .unwrap();
        let network = Network::new(config).unwrap();
        let bytes = network.to_snapshot_bytes();
        let handle = Arc::new(EngineHandle::new(ServingEngine::new(
            network,
            ServeOptions::default().with_top_k(3),
        )));
        let server = BatchServer::over_handle(Arc::clone(&handle), BatchOptions::default());

        let (tx, rx) = mpsc::channel();
        let tx2 = tx.clone();
        server
            .submit_callbacks(vec![(
                data.test.examples()[0].features.clone(),
                3,
                Box::new(move |r, epoch| {
                    tx.send((r.map(|p| p.topk.len()), epoch)).ok();
                }),
            )])
            .unwrap();
        let (r, epoch) = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(r.is_ok());
        assert_eq!(epoch, 1);

        // After a reload, new jobs answer under the new epoch.
        handle.reload_from_bytes(&bytes).unwrap();
        server
            .submit_callbacks(vec![(
                data.test.examples()[0].features.clone(),
                3,
                Box::new(move |r, epoch| {
                    tx2.send((r.map(|p| p.topk.len()), epoch)).ok();
                }),
            )])
            .unwrap();
        let (r, epoch) = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(r.is_ok());
        assert_eq!(epoch, 2);
        server.shutdown();
    }

    #[test]
    fn injected_panic_answers_typed_500_and_the_pool_self_heals() {
        let data = generate(&SyntheticConfig::tiny().with_seed(8));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(9)
            .build()
            .unwrap();
        let engine = Arc::new(ServingEngine::new(
            Network::new(config).unwrap(),
            ServeOptions::default().with_top_k(3),
        ));
        let faults = Arc::new(FaultPlan::new());
        let server = BatchServer::start_with_faults(
            Arc::clone(&engine),
            BatchOptions::default().with_workers(2),
            Arc::clone(&faults),
        );
        let ex = data.test.examples()[0].features.clone();

        // Three consecutive injected panics: each submission answers the
        // typed error (never hangs), and the supervisor respawns the
        // worker each time.
        faults.inject_worker_panics(3);
        let mut panics_seen = 0;
        for _ in 0..200 {
            match server.predict(ex.clone()) {
                Err(ServeError::WorkerPanicked) => panics_seen += 1,
                Ok(_) => {}
                Err(other) => panic!("unexpected {other:?}"),
            }
            if panics_seen == 3 {
                break;
            }
        }
        assert_eq!(panics_seen, 3, "all injected panics must surface");
        assert_eq!(faults.panics_fired(), 3);

        // The pool recovered: a full pool's worth of requests all answer.
        for _ in 0..20 {
            server.predict(ex.clone()).expect("pool must self-heal");
        }
        assert_eq!(server.stats().worker_panics, 3);
        // The surviving worker can absorb the recovery burst while the
        // last respawn is still in flight on the supervisor thread, so
        // the counter needs a bounded wait rather than a point read.
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().worker_respawns < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.stats().worker_respawns, 3);
        server.shutdown();
    }

    #[test]
    fn degradation_steps_up_under_pressure_and_recovers() {
        // Drive the hysteresis directly: waits above the high watermark
        // step the level up after the streak, waits below the low
        // watermark step it back down.
        let opts = DegradeOptions::default()
            .with_enabled(true)
            .with_watermarks(Duration::from_micros(10), Duration::from_micros(100))
            .with_max_level(2)
            .with_streaks(2, 3);
        let state = DegradeState::new(opts);
        let high = Duration::from_millis(1);
        let low = Duration::ZERO;
        assert_eq!(state.observe(high), 0, "one vote is not a streak");
        assert_eq!(state.observe(high), 1, "streak of 2 steps up");
        assert_eq!(state.observe(high), 1);
        assert_eq!(state.observe(high), 2, "second streak steps again");
        for _ in 0..10 {
            state.observe(high);
        }
        assert_eq!(
            state.level.load(Ordering::Relaxed),
            2,
            "capped at max_level"
        );
        // Recovery needs the longer down-streak.
        assert_eq!(state.observe(low), 2);
        assert_eq!(state.observe(low), 2);
        assert_eq!(state.observe(low), 1, "streak of 3 steps down");
        assert_eq!(state.observe(low), 1);
        assert_eq!(state.observe(low), 1);
        assert_eq!(state.observe(low), 0);
        // A mid-band wait holds the level and resets streaks.
        let mid = Duration::from_micros(50);
        assert_eq!(state.observe(high), 0);
        assert_eq!(state.observe(mid), 0);
        assert_eq!(
            state.observe(high),
            0,
            "streak was reset by the mid-band wait"
        );
        // Disabled state never degrades.
        let off = DegradeState::new(DegradeOptions::default());
        assert_eq!(off.observe(Duration::from_secs(5)), 0);
    }

    #[test]
    fn expired_jobs_are_shed_with_overloaded() {
        // One worker, and the first job is a panic that kills it: while
        // the supervisor respawns, the remaining jobs age past the shed
        // deadline and must answer Overloaded without compute... a
        // simpler deterministic route: shed_after = 0 means every job
        // that waited at all is shed.
        let data = generate(&SyntheticConfig::tiny().with_seed(8));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(9)
            .build()
            .unwrap();
        let engine = Arc::new(ServingEngine::new(
            Network::new(config).unwrap(),
            ServeOptions::default().with_top_k(3),
        ));
        let server = BatchServer::start(
            engine,
            BatchOptions::default()
                .with_workers(1)
                .with_degrade(DegradeOptions::default().with_shed_after(Some(Duration::ZERO))),
        );
        let ex = data.test.examples()[0].features.clone();
        let mut shed = 0;
        for _ in 0..50 {
            match server.predict(ex.clone()) {
                Err(ServeError::Overloaded { retry_after_secs }) => {
                    assert_eq!(retry_after_secs, RETRY_AFTER_SECS);
                    shed += 1;
                }
                Ok(_) => {}
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!(shed > 0, "zero-deadline shed never fired");
        assert_eq!(server.stats().shed, shed);
        server.shutdown();
    }

    #[test]
    fn dead_worker_pool_surfaces_as_typed_shutdown_error() {
        // A handle whose reply sender is gone without an answer models a
        // dead pool: wait() must return the typed error, not hang or
        // panic.
        let (tx, rx) = mpsc::channel::<Result<Prediction, ServeError>>();
        drop(tx);
        let handle = RequestHandle { rx };
        assert!(matches!(handle.wait(), Err(ServeError::ServerShutdown)));
    }
}
