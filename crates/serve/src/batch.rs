//! Micro-batching request queue over a worker thread pool.
//!
//! Concurrent callers enqueue `(features, k)` jobs; worker threads sleep
//! on a condvar and, on wakeup, *drain up to `max_batch` jobs in one
//! critical section*. That aggregation is the point of micro-batching:
//! under load, one lock acquisition and one wakeup amortize over a whole
//! batch, and each worker streams its jobs through a workspace it checks
//! out once for its lifetime (warm caches; the only per-request
//! allocation is the k-slot result itself). Each caller receives its
//! answer through a private channel, so requests complete independently —
//! a batch is an execution detail, not an API contract.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use slide_data::SparseVector;

use crate::engine::{Prediction, ServingEngine};
use crate::error::ServeError;

/// Sizing for a [`BatchServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOptions {
    /// Worker threads serving the queue.
    pub workers: usize,
    /// Maximum jobs one worker drains per wakeup.
    pub max_batch: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 16,
        }
    }
}

impl BatchOptions {
    /// Sets the worker count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "workers must be positive");
        self.workers = workers;
        self
    }

    /// Sets the per-wakeup batch cap (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        self.max_batch = max_batch;
        self
    }
}

struct Job {
    features: SparseVector,
    k: usize,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Prediction, ServeError>>,
}

#[derive(Default)]
struct BatchCounters {
    requests: AtomicU64,
    batches: AtomicU64,
    batched_jobs: AtomicU64,
    largest_batch: AtomicU64,
    total_queue_ns: AtomicU64,
}

struct Shared {
    engine: Arc<ServingEngine>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    counters: BatchCounters,
}

/// Queue + throughput statistics of a running [`BatchServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// Requests completed.
    pub requests: u64,
    /// Worker wakeups that processed at least one job.
    pub batches: u64,
    /// Mean jobs per processed batch.
    pub mean_batch: f64,
    /// Largest single batch drained.
    pub largest_batch: u64,
    /// Mean time a request waited in the queue before a worker picked it
    /// up.
    pub mean_queue_wait: Duration,
}

/// Handle to one in-flight request; resolves to its [`Prediction`].
#[derive(Debug)]
pub struct RequestHandle {
    rx: mpsc::Receiver<Result<Prediction, ServeError>>,
}

impl RequestHandle {
    /// Blocks until the prediction arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ServerShutdown`] if the worker pool shut
    /// down (or a worker died) before answering — a dead pool is a typed
    /// error, never a silent non-answer — and forwards any typed error
    /// the engine returned for this request.
    pub fn wait(self) -> Result<Prediction, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ServerShutdown)?
    }
}

/// A micro-batching server over a shared [`ServingEngine`].
///
/// Submitting is non-blocking ([`BatchServer::submit`] returns a
/// [`RequestHandle`]); [`BatchServer::predict`] is the blocking
/// convenience. Dropping the server drains nothing: workers finish the
/// jobs already queued, then exit.
pub struct BatchServer {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for BatchServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchServer")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl BatchServer {
    /// Starts `options.workers` worker threads over `engine`.
    pub fn start(engine: Arc<ServingEngine>, options: BatchOptions) -> Self {
        assert!(options.workers > 0, "workers must be positive");
        assert!(options.max_batch > 0, "max_batch must be positive");
        let shared = Arc::new(Shared {
            engine,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: BatchCounters::default(),
        });
        let workers = (0..options.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let max_batch = options.max_batch;
                std::thread::spawn(move || worker_loop(&shared, max_batch))
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueues a request for the engine's configured `top_k`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FeatureIndexOutOfRange`] if the request's
    /// feature indices do not fit the network's input dimension.
    pub fn submit(&self, features: SparseVector) -> Result<RequestHandle, ServeError> {
        let k = self.shared.engine.default_top_k();
        self.submit_k(features, k)
    }

    /// Enqueues a request for an explicit `k`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidTopK`] if `k == 0`, or
    /// [`ServeError::FeatureIndexOutOfRange`] on an out-of-range feature
    /// index. Both checks run on the submitting thread, so a malformed
    /// request is rejected before it can ever reach a worker.
    pub fn submit_k(&self, features: SparseVector, k: usize) -> Result<RequestHandle, ServeError> {
        self.shared.engine.validate_request(&features, k)?;
        let (reply, rx) = mpsc::channel();
        {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q.push_back(Job {
                features,
                k,
                enqueued: Instant::now(),
                reply,
            });
        }
        self.shared.available.notify_one();
        Ok(RequestHandle { rx })
    }

    /// Blocking request: enqueue, wait, return the prediction.
    ///
    /// # Errors
    ///
    /// Returns the submit-time validation error, or
    /// [`ServeError::ServerShutdown`] if the pool died before answering.
    pub fn predict(&self, features: SparseVector) -> Result<Prediction, ServeError> {
        self.submit(features)?.wait()
    }

    /// The engine behind this server.
    pub fn engine(&self) -> &ServingEngine {
        &self.shared.engine
    }

    /// A snapshot of the batching statistics.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        let requests = c.requests.load(Ordering::Relaxed);
        let batches = c.batches.load(Ordering::Relaxed);
        let batched = c.batched_jobs.load(Ordering::Relaxed);
        ServerStats {
            requests,
            batches,
            mean_batch: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            largest_batch: c.largest_batch.load(Ordering::Relaxed),
            mean_queue_wait: Duration::from_nanos(
                c.total_queue_ns
                    .load(Ordering::Relaxed)
                    .checked_div(requests)
                    .unwrap_or(0),
            ),
        }
    }

    /// Stops the workers after the queued jobs finish and joins them.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            h.join().ok();
        }
    }

    fn begin_shutdown(&self) {
        // Set the flag while holding the queue mutex: a worker that has
        // seen an empty queue but not yet parked on the condvar holds the
        // lock through that window, so the store-then-notify cannot slip
        // between its check and its wait (the classic lost wakeup).
        {
            let _q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.shared.shutdown.store(true, Ordering::SeqCst);
        }
        self.shared.available.notify_all();
    }
}

impl Drop for BatchServer {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            h.join().ok();
        }
    }
}

fn worker_loop(shared: &Shared, max_batch: usize) {
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    // One workspace per worker for its whole lifetime: batched jobs
    // stream through it back-to-back without touching the pool mutex.
    let mut ws = shared.engine.checkout_workspace();
    // Batched-scoring scratch, likewise worker-lifetime (hidden
    // activations, candidate union, score matrix), plus the per-batch
    // staging buffers — cleared and refilled each wakeup, so the hot
    // loop's only steady-state allocation stays the k-slot result.
    let mut scratch = slide_core::inference::BatchScratch::default();
    let mut predictions: Vec<crate::engine::Prediction> = Vec::with_capacity(max_batch);
    let mut feats: Vec<SparseVector> = Vec::with_capacity(max_batch);
    let mut ks: Vec<usize> = Vec::with_capacity(max_batch);
    let mut replies: Vec<mpsc::Sender<Result<crate::engine::Prediction, ServeError>>> =
        Vec::with_capacity(max_batch);
    loop {
        // Drain up to max_batch jobs in one critical section.
        {
            let mut q = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if !q.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = shared
                    .available
                    .wait(q)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            while batch.len() < max_batch {
                match q.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }

        let c = &shared.counters;
        c.batches.fetch_add(1, Ordering::Relaxed);
        c.batched_jobs
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        c.largest_batch
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        for job in &batch {
            c.total_queue_ns
                .fetch_add(job.enqueued.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if batch.len() > 1 {
            // A real micro-batch: score it through the fused shared-union
            // path, which loads every candidate weight row once for the
            // whole batch.
            feats.clear();
            ks.clear();
            replies.clear();
            for job in batch.drain(..) {
                feats.push(job.features);
                ks.push(job.k);
                replies.push(job.reply);
            }
            predictions.clear();
            match shared.engine.predict_batch_in(
                &mut ws,
                &mut scratch,
                &feats,
                &ks,
                &mut predictions,
            ) {
                Ok(()) => {
                    c.requests.fetch_add(feats.len() as u64, Ordering::Relaxed);
                    for (reply, prediction) in replies.drain(..).zip(predictions.drain(..)) {
                        // A dropped handle just discards the answer.
                        reply.send(Ok(prediction)).ok();
                    }
                }
                Err(_) => {
                    // Jobs are validated at submit, so a batch-level
                    // rejection should be unreachable; if it ever happens,
                    // answer each job individually so every caller gets
                    // its own typed result instead of a shared error.
                    for ((features, k), reply) in
                        feats.drain(..).zip(ks.drain(..)).zip(replies.drain(..))
                    {
                        let result = shared.engine.predict_in(&mut ws, &features, k);
                        c.requests.fetch_add(1, Ordering::Relaxed);
                        reply.send(result).ok();
                    }
                }
            }
        } else {
            for job in batch.drain(..) {
                let result = shared.engine.predict_in(&mut ws, &job.features, job.k);
                c.requests.fetch_add(1, Ordering::Relaxed);
                job.reply.send(result).ok();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ServeOptions, ServingEngine};
    use slide_core::config::{LshLayerConfig, NetworkConfig};
    use slide_core::Network;
    use slide_data::synth::{generate, SyntheticConfig};

    fn tiny_server(options: BatchOptions) -> (BatchServer, slide_data::synth::SyntheticData) {
        let data = generate(&SyntheticConfig::tiny().with_seed(8));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(9)
            .build()
            .unwrap();
        let engine = Arc::new(ServingEngine::new(
            Network::new(config).unwrap(),
            ServeOptions::default().with_top_k(3),
        ));
        (BatchServer::start(engine, options), data)
    }

    #[test]
    fn serves_queued_requests() {
        let (server, data) = tiny_server(BatchOptions::default());
        let handles: Vec<RequestHandle> = data
            .test
            .iter()
            .take(30)
            .map(|ex| server.submit(ex.features.clone()).unwrap())
            .collect();
        for h in handles {
            let p = h.wait().expect("answered");
            assert!(!p.topk.is_empty());
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 30);
        assert!(stats.batches >= 1);
        assert!(stats.mean_batch >= 1.0);
        assert!(stats.largest_batch >= 1);
        server.shutdown();
    }

    #[test]
    fn batches_aggregate_under_backlog() {
        // One slow worker and a pre-filled queue: the drains that happen
        // after the backlog builds must pick up more than one job.
        let (server, data) = tiny_server(BatchOptions::default().with_workers(1).with_max_batch(8));
        let handles: Vec<RequestHandle> = (0..64)
            .map(|i| {
                server
                    .submit(data.test.examples()[i % data.test.len()].features.clone())
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.wait().expect("answered");
        }
        let stats = server.stats();
        assert_eq!(stats.requests, 64);
        // 64 jobs through max-batch-8 drains: at least one multi-job batch.
        assert!(stats.largest_batch > 1, "no batching observed: {stats:?}");
        assert!(stats.largest_batch <= 8);
    }

    #[test]
    fn concurrent_submitters_all_get_answers() {
        let (server, data) = tiny_server(BatchOptions::default().with_workers(3));
        let server = Arc::new(server);
        let data = Arc::new(data);
        let submitters: Vec<_> = (0..6)
            .map(|t| {
                let server = Arc::clone(&server);
                let data = Arc::clone(&data);
                std::thread::spawn(move || {
                    for i in 0..20 {
                        let ex = &data.test.examples()[(t * 20 + i) % data.test.len()];
                        let p = server.predict(ex.features.clone()).unwrap();
                        assert!(p.topk.len() <= 3);
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        assert_eq!(server.stats().requests, 120);
        assert_eq!(server.engine().stats().requests, 120);
    }

    #[test]
    fn shutdown_drains_then_stops() {
        let (server, data) = tiny_server(BatchOptions::default().with_workers(2));
        let handles: Vec<RequestHandle> = data
            .test
            .iter()
            .take(10)
            .map(|ex| server.submit(ex.features.clone()).unwrap())
            .collect();
        server.shutdown();
        // Workers drain the queue before exiting, so every handle resolves.
        let answered = handles.into_iter().filter_map(|h| h.wait().ok()).count();
        assert_eq!(answered, 10);
    }

    #[test]
    fn malformed_submissions_are_rejected_on_the_submitting_thread() {
        let (server, data) = tiny_server(BatchOptions::default());
        let dim = server.engine().input_dim();
        let bad = SparseVector::from_pairs([(dim as u32 + 5, 1.0)]);
        assert!(matches!(
            server.submit(bad),
            Err(ServeError::FeatureIndexOutOfRange { .. })
        ));
        assert!(matches!(
            server.submit_k(data.test.examples()[0].features.clone(), 0),
            Err(ServeError::InvalidTopK { .. })
        ));
        // The pool is still healthy after rejections.
        let p = server.predict(data.test.examples()[0].features.clone());
        assert!(p.is_ok());
    }

    #[test]
    fn dead_worker_pool_surfaces_as_typed_shutdown_error() {
        // A handle whose reply sender is gone without an answer models a
        // dead pool: wait() must return the typed error, not hang or
        // panic.
        let (tx, rx) = mpsc::channel::<Result<Prediction, ServeError>>();
        drop(tx);
        let handle = RequestHandle { rx };
        assert!(matches!(handle.wait(), Err(ServeError::ServerShutdown)));
    }
}
