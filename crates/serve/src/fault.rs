//! Runtime fault injection for chaos drills.
//!
//! A [`FaultPlan`] is a switchboard of pending faults that the serving
//! internals consult at well-defined points: the batch workers check it
//! once per drain (panic injection), and snapshot publishers can route
//! writes through [`FaultPlan::publish`] to produce corrupt or truncated
//! — but still atomically published — snapshot files. The plan is
//! runtime-configurable and cheap when idle: an unarmed plan costs one
//! relaxed atomic load per drain, and a server built without one (the
//! default) only pays an `Option` check.
//!
//! Transport-level faults (slow-loris bodies, mid-request disconnects)
//! need no server-side hook — a chaos client simply misbehaves on the
//! socket — so this module only models the faults that must originate
//! inside the process: worker panics and bad model publishes.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use slide_core::snapshot::{publish_bytes, SnapshotError};

/// How [`FaultPlan::publish`] mangled the snapshot it published.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishFault {
    /// The bytes went out intact.
    None,
    /// Bytes in the middle of the payload were flipped; the trailing
    /// checksum must reject the file on load.
    Corrupt,
    /// Only a prefix of the bytes was published; the length/checksum
    /// validation must reject the file on load.
    Truncate,
}

/// A switchboard of pending injected faults, shared with a server via
/// `Arc` (e.g. [`crate::BatchServer::over_handle_with_faults`]).
///
/// Each `inject_*` call arms a *count* of one-shot faults; consumption
/// is atomic, so exactly that many fire no matter how many threads race
/// on the plan.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Fast-path gate: workers read only this until something is armed.
    armed: AtomicBool,
    worker_panics: AtomicU64,
    corrupt_publishes: AtomicU64,
    truncate_publishes: AtomicU64,
    panics_fired: AtomicU64,
}

impl FaultPlan {
    /// An empty plan; nothing fires until an `inject_*` call arms it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms `n` worker panics: the next `n` drains across the pool
    /// panic mid-batch (after dequeuing, before scoring) — exactly where
    /// a scoring bug would.
    pub fn inject_worker_panics(&self, n: u64) {
        self.worker_panics.fetch_add(n, Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Arms `n` corrupt publishes: the next `n` [`FaultPlan::publish`]
    /// calls flip bytes in the payload before writing.
    pub fn inject_corrupt_publishes(&self, n: u64) {
        self.corrupt_publishes.fetch_add(n, Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Arms `n` truncated publishes: the next `n` [`FaultPlan::publish`]
    /// calls write only the first half of the bytes.
    pub fn inject_truncated_publishes(&self, n: u64) {
        self.truncate_publishes.fetch_add(n, Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Injected worker panics that have actually fired so far.
    pub fn panics_fired(&self) -> u64 {
        self.panics_fired.load(Ordering::SeqCst)
    }

    /// Worker panics still armed (not yet fired).
    pub fn panics_pending(&self) -> u64 {
        self.worker_panics.load(Ordering::SeqCst)
    }

    /// Consumes one armed worker panic if any remain. Called by workers
    /// once per drain; with nothing ever armed this is a single relaxed
    /// load.
    pub(crate) fn take_worker_panic(&self) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        if Self::take(&self.worker_panics) {
            self.panics_fired.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            false
        }
    }

    /// Decrements `counter` if positive; true exactly `n` times across
    /// all racing threads after `n` was armed.
    fn take(counter: &AtomicU64) -> bool {
        let mut n = counter.load(Ordering::SeqCst);
        while n > 0 {
            match counter.compare_exchange(n, n - 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return true,
                Err(cur) => n = cur,
            }
        }
        false
    }

    /// Publishes snapshot `bytes` at `path` through the atomic
    /// tmp+fsync+rename writer ([`publish_bytes`]), first applying the
    /// next armed publish fault (truncation wins over corruption when
    /// both are armed). The publication itself stays atomic even when
    /// the payload is poisoned — the point is to drill the *validation
    /// and rollback* path, not the torn-write path the atomic writer
    /// already closed.
    ///
    /// Returns which fault (if any) was applied.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Io`] on filesystem failure.
    pub fn publish(&self, path: &Path, bytes: &[u8]) -> Result<PublishFault, SnapshotError> {
        if Self::take(&self.truncate_publishes) {
            publish_bytes(path, &bytes[..bytes.len() / 2])?;
            return Ok(PublishFault::Truncate);
        }
        if Self::take(&self.corrupt_publishes) {
            let mut poisoned = bytes.to_vec();
            let mid = poisoned.len() / 2;
            for b in poisoned.iter_mut().skip(mid).take(16) {
                *b ^= 0xFF;
            }
            publish_bytes(path, &poisoned)?;
            return Ok(PublishFault::Corrupt);
        }
        publish_bytes(path, bytes)?;
        Ok(PublishFault::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unarmed_plan_fires_nothing() {
        let plan = FaultPlan::new();
        assert!(!plan.take_worker_panic());
        assert_eq!(plan.panics_fired(), 0);
        assert_eq!(plan.panics_pending(), 0);
    }

    #[test]
    fn armed_panics_fire_exactly_n_times_across_threads() {
        let plan = Arc::new(FaultPlan::new());
        plan.inject_worker_panics(5);
        let fired: usize = (0..4)
            .map(|_| {
                let plan = Arc::clone(&plan);
                std::thread::spawn(move || (0..100).filter(|_| plan.take_worker_panic()).count())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum();
        assert_eq!(fired, 5);
        assert_eq!(plan.panics_fired(), 5);
        assert!(!plan.take_worker_panic(), "nothing left armed");
    }

    #[test]
    fn publish_faults_apply_in_order_then_clear() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("slide_fault_pub_{}.bin", std::process::id()));
        let bytes: Vec<u8> = (0..200u8).collect();
        let plan = FaultPlan::new();
        plan.inject_corrupt_publishes(1);
        plan.inject_truncated_publishes(1);
        // Truncation consumes first, then corruption, then clean.
        assert_eq!(plan.publish(&path, &bytes).unwrap(), PublishFault::Truncate);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 100);
        assert_eq!(plan.publish(&path, &bytes).unwrap(), PublishFault::Corrupt);
        let on_disk = std::fs::read(&path).unwrap();
        assert_eq!(on_disk.len(), bytes.len());
        assert_ne!(on_disk, bytes);
        assert_eq!(plan.publish(&path, &bytes).unwrap(), PublishFault::None);
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        std::fs::remove_file(&path).ok();
    }
}
