//! A minimal blocking HTTP/1.1 client for the `v1` service API.
//!
//! Dependency-free like the server, it exists so examples, tests, and
//! the `serve_rpc` bench can drive a running [`crate::http::HttpServer`]
//! over a real socket with typed requests and responses. One [`Client`]
//! holds one keep-alive connection and transparently reconnects once if
//! the server closed it between requests (idle timeout, restart).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use slide_data::SparseVector;

use crate::json::{self, Json};
use crate::wire::{self, PredictRequest, PredictResponse};

/// Client-side failure talking to the service.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (after the one reconnect attempt).
    Io(std::io::Error),
    /// The peer's bytes were not parseable as HTTP or as the wire
    /// schema.
    Protocol(String),
    /// The service answered with a non-2xx status and a wire
    /// `ErrorBody`.
    Api {
        /// HTTP status.
        status: u16,
        /// Machine-readable code from the error body.
        code: String,
        /// Human-readable message from the error body.
        message: String,
    },
    /// The service rejected the request with backpressure (`429`).
    /// Distinct from [`ClientError::Api`] so callers can branch on
    /// "wait and retry" without string-matching a code.
    Overloaded {
        /// Seconds the `Retry-After` header asked us to wait, when the
        /// server sent one.
        retry_after_secs: Option<u64>,
        /// Human-readable message from the error body.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "api error {status} ({code}): {message}"),
            ClientError::Overloaded {
                retry_after_secs,
                message,
            } => match retry_after_secs {
                Some(secs) => write!(f, "overloaded: {message} (retry after {secs}s)"),
                None => write!(f, "overloaded: {message}"),
            },
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Decoded `/healthz` answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// The model epoch currently serving.
    pub epoch: u64,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One keep-alive connection to a serving front-end.
pub struct Client {
    addr: SocketAddr,
    conn: Option<Conn>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").field("addr", &self.addr).finish()
    }
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let mut c = Self { addr, conn: None };
        c.reconnect()?;
        Ok(c)
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some(Conn {
            reader,
            writer: stream,
        });
        Ok(())
    }

    /// Sends one request and returns `(status, body)`. Reuses the
    /// keep-alive connection. Only `GET`s are retried on a fresh
    /// connection after a transport failure: a failed non-idempotent
    /// request may already have been executed server-side (the response
    /// was lost, not necessarily the request), so replaying it is the
    /// caller's decision. The typed `predict*` helpers opt into the
    /// retry because prediction is pure; [`Client::reload`] never
    /// retries.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] / [`ClientError::Protocol`] on
    /// transport failures. Non-2xx statuses are returned as `Ok`; typed
    /// helpers layer [`ClientError::Api`] on top.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        self.request_with_retry(method, path, body, method.eq_ignore_ascii_case("GET"))
    }

    fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        retry: bool,
    ) -> Result<(u16, String), ClientError> {
        self.request_full(method, path, body, retry)
            .map(|(status, body, _)| (status, body))
    }

    fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        retry: bool,
    ) -> Result<(u16, String, Option<u64>), ClientError> {
        match self.try_request(method, path, body) {
            Ok(r) => Ok(r),
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) if retry => {
                // One retry on a fresh connection (try_request dropped
                // the broken one).
                self.reconnect()?;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String, Option<u64>), ClientError> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let result = {
            let conn = self.conn.as_mut().expect("connected above");
            Self::roundtrip(conn, method, path, body)
        };
        match result {
            Ok((status, body, keep_alive, retry_after)) => {
                if !keep_alive {
                    self.conn = None;
                }
                Ok((status, body, retry_after))
            }
            Err(e) => {
                // A broken connection is stale state: drop it so the
                // caller (or the retry above) starts clean.
                self.conn = None;
                Err(e)
            }
        }
    }

    fn roundtrip(
        conn: &mut Conn,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String, bool, Option<u64>), ClientError> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: slide\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        conn.writer.write_all(head.as_bytes())?;
        conn.writer.write_all(body.as_bytes())?;
        conn.writer.flush()?;

        let status_line = read_line(&mut conn.reader)?;
        let mut parts = status_line.split_whitespace();
        let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
            return Err(ClientError::Protocol(format!(
                "bad status line {status_line:?}"
            )));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(ClientError::Protocol(format!(
                "bad status line {status_line:?}"
            )));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad status {status:?}")))?;
        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut retry_after = None;
        loop {
            let header = read_line(&mut conn.reader)?;
            if header.is_empty() {
                break;
            }
            let Some((name, value)) = header.split_once(':') else {
                return Err(ClientError::Protocol(format!("bad header {header:?}")));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|_| ClientError::Protocol("bad content-length".into()))?;
                }
                "connection" if value.eq_ignore_ascii_case("close") => keep_alive = false,
                // Delta-seconds form only (the API never sends a date).
                "retry-after" => retry_after = value.parse().ok(),
                _ => {}
            }
        }
        let mut body = vec![0u8; content_length];
        conn.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("non-utf8 response body".into()))?;
        Ok((status, body, keep_alive, retry_after))
    }

    fn expect_2xx(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        retry: bool,
    ) -> Result<String, ClientError> {
        let (status, body, retry_after) = self.request_full(method, path, body, retry)?;
        if (200..300).contains(&status) {
            Ok(body)
        } else {
            let (code, message) = wire::decode_error_body(&body);
            if status == 429 {
                return Err(ClientError::Overloaded {
                    retry_after_secs: retry_after,
                    message,
                });
            }
            Err(ClientError::Api {
                status,
                code,
                message,
            })
        }
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer.
    pub fn healthz(&mut self) -> Result<Health, ClientError> {
        let body = self.expect_2xx("GET", "/healthz", None, true)?;
        let v =
            json::parse(&body).map_err(|e| ClientError::Protocol(format!("healthz body: {e}")))?;
        let epoch = v
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("healthz missing epoch".into()))?;
        Ok(Health { epoch })
    }

    /// `POST /v1/predict` with one input.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer ([`ClientError::Api`]).
    pub fn predict(
        &mut self,
        features: &SparseVector,
        top_k: Option<usize>,
    ) -> Result<PredictResponse, ClientError> {
        self.predict_batch(std::slice::from_ref(features), top_k)
    }

    /// `POST /v1/predict` with a batch of inputs (a single input uses
    /// the wire's single form).
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer ([`ClientError::Api`]).
    pub fn predict_batch(
        &mut self,
        features: &[SparseVector],
        top_k: Option<usize>,
    ) -> Result<PredictResponse, ClientError> {
        let req = PredictRequest {
            inputs: features.to_vec(),
            top_k,
        };
        let body = wire::encode_predict_request(&req);
        // Prediction is a pure function of the snapshot, so replaying it
        // after a broken keep-alive connection is safe.
        let resp = self.expect_2xx("POST", "/v1/predict", Some(&body), true)?;
        wire::decode_predict_response(&resp)
            .map_err(|e| ClientError::Protocol(format!("predict body: {e}")))
    }

    /// `POST /v1/reload` with a snapshot path; returns the new epoch.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer ([`ClientError::Api`]).
    pub fn reload(&mut self, snapshot_path: &str) -> Result<u64, ClientError> {
        let mut body = String::from("{\"path\":");
        json::push_escaped(&mut body, snapshot_path);
        body.push('}');
        // Never auto-replayed: a lost response does not mean a lost
        // request, and a duplicate reload swaps the engine twice.
        let resp = self.expect_2xx("POST", "/v1/reload", Some(&body), false)?;
        let v =
            json::parse(&resp).map_err(|e| ClientError::Protocol(format!("reload body: {e}")))?;
        v.get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("reload missing epoch".into()))
    }

    /// `GET /v1/stats`, parsed as raw JSON.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer.
    pub fn stats_json(&mut self) -> Result<Json, ClientError> {
        let body = self.expect_2xx("GET", "/v1/stats", None, true)?;
        json::parse(&body).map_err(|e| ClientError::Protocol(format!("stats body: {e}")))
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed",
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A canned one-response-per-connection server: reads one request
    /// head, writes the scripted response verbatim, closes.
    fn scripted_server(responses: Vec<String>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for response in responses {
                let (mut stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 || line.trim_end().is_empty() {
                        break;
                    }
                }
                stream.write_all(response.as_bytes()).unwrap();
            }
        });
        addr
    }

    #[test]
    fn a_429_maps_to_the_typed_overloaded_error() {
        let body = "{\"error\":{\"code\":\"overloaded\",\"message\":\"queue full\"}}";
        let addr = scripted_server(vec![format!(
            "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\nRetry-After: 7\r\n\r\n{}",
            body.len(),
            body
        )]);
        let mut client = Client::connect(addr).unwrap();
        match client.healthz() {
            Err(ClientError::Overloaded {
                retry_after_secs,
                message,
            }) => {
                assert_eq!(retry_after_secs, Some(7));
                assert_eq!(message, "queue full");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn connection_close_is_honored_and_the_next_request_reconnects() {
        let first = "{\"api_version\":1,\"status\":\"ok\",\"epoch\":3}";
        let second = "{\"api_version\":1,\"status\":\"ok\",\"epoch\":4}";
        let addr = scripted_server(vec![
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                first.len(),
                first
            ),
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
                second.len(),
                second
            ),
        ]);
        let mut client = Client::connect(addr).unwrap();
        // First answer says close: the client must drop the connection
        // and transparently dial a fresh one for the next request.
        assert_eq!(client.healthz().unwrap().epoch, 3);
        assert_eq!(client.healthz().unwrap().epoch, 4);
    }
}
