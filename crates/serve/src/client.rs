//! A minimal blocking HTTP/1.1 client for the `v1` service API.
//!
//! Dependency-free like the server, it exists so examples, tests, and
//! the `serve_rpc` bench can drive a running [`crate::http::HttpServer`]
//! over a real socket with typed requests and responses. One [`Client`]
//! holds one keep-alive connection and transparently reconnects once if
//! the server closed it between requests (idle timeout, restart).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

use slide_data::SparseVector;

use crate::json::{self, Json};
use crate::wire::{self, PredictRequest, PredictResponse};

/// Client-side failure talking to the service.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (after the one reconnect attempt).
    Io(std::io::Error),
    /// The peer's bytes were not parseable as HTTP or as the wire
    /// schema.
    Protocol(String),
    /// The service answered with a non-2xx status and a wire
    /// `ErrorBody`.
    Api {
        /// HTTP status.
        status: u16,
        /// Machine-readable code from the error body.
        code: String,
        /// Human-readable message from the error body.
        message: String,
    },
    /// The service rejected the request with backpressure (`429`).
    /// Distinct from [`ClientError::Api`] so callers can branch on
    /// "wait and retry" without string-matching a code.
    Overloaded {
        /// Seconds the `Retry-After` header asked us to wait, when the
        /// server sent one.
        retry_after_secs: Option<u64>,
        /// Human-readable message from the error body.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Api {
                status,
                code,
                message,
            } => write!(f, "api error {status} ({code}): {message}"),
            ClientError::Overloaded {
                retry_after_secs,
                message,
            } => match retry_after_secs {
                Some(secs) => write!(f, "overloaded: {message} (retry after {secs}s)"),
                None => write!(f, "overloaded: {message}"),
            },
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Decoded `/healthz` answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// The model epoch currently serving.
    pub epoch: u64,
}

/// Capped exponential backoff with jitter for retrying
/// [`ClientError::Overloaded`] (`429`) answers.
///
/// Opt-in via [`Client::with_retry_policy`]; without one the client
/// never retries a 429 — backpressure is the caller's signal by default.
/// The wait before retry `n` (0-based) is
/// `max(base_delay · 2ⁿ, Retry-After)`, jittered by a deterministic
/// multiplicative factor in `[1 − jitter, 1 + jitter]`, and capped at
/// [`RetryPolicy::max_delay`] — the cap applies even to a
/// server-advertised `Retry-After` larger than it, so one bad header
/// cannot stall a client for minutes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Most retries after the initial attempt.
    pub max_retries: u32,
    /// Backoff base: the pre-jitter wait before the first retry.
    pub base_delay: std::time::Duration,
    /// Hard cap on any single wait (including `Retry-After`).
    pub max_delay: std::time::Duration,
    /// Jitter fraction in `[0, 1]`: each wait is scaled by a factor in
    /// `[1 − jitter, 1 + jitter]` so a fleet of rejected clients does
    /// not retry in lockstep.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream (tests pin it).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_delay: std::time::Duration::from_millis(25),
            max_delay: std::time::Duration::from_secs(2),
            jitter: 0.2,
            seed: 0x51DE,
        }
    }
}

impl RetryPolicy {
    /// Sets the retry cap (builder style).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the backoff base and cap (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `base > max`.
    pub fn with_delays(mut self, base: std::time::Duration, max: std::time::Duration) -> Self {
        assert!(base <= max, "base delay must not exceed the cap");
        self.base_delay = base;
        self.max_delay = max;
        self
    }

    /// Sets the jitter fraction (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ jitter ≤ 1.0`.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..=1.0).contains(&jitter), "jitter must be in [0, 1]");
        self.jitter = jitter;
        self
    }

    /// The pre-jitter wait before 0-based retry `attempt`, honoring the
    /// server's `Retry-After` (if any) up to [`RetryPolicy::max_delay`].
    fn wait_before(&self, attempt: u32, retry_after_secs: Option<u64>) -> std::time::Duration {
        let backoff = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        let advertised = retry_after_secs
            .map(std::time::Duration::from_secs)
            .unwrap_or(std::time::Duration::ZERO);
        backoff.max(advertised).min(self.max_delay)
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One keep-alive connection to a serving front-end.
pub struct Client {
    addr: SocketAddr,
    conn: Option<Conn>,
    retry: Option<RetryPolicy>,
    /// Socket read deadline applied to every connection (including
    /// reconnects); `None` blocks forever.
    read_timeout: Option<std::time::Duration>,
    /// xorshift64 state for the retry jitter.
    jitter_state: u64,
    retries_attempted: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").field("addr", &self.addr).finish()
    }
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let mut c = Self {
            addr,
            conn: None,
            retry: None,
            read_timeout: None,
            jitter_state: 1,
            retries_attempted: 0,
        };
        c.reconnect()?;
        Ok(c)
    }

    /// Bounds every socket read with `timeout`: a peer that stops
    /// answering surfaces as [`ClientError::Io`] with
    /// `WouldBlock`/`TimedOut` instead of hanging the caller forever.
    /// The scatter-gather router leans on this for its merge deadline —
    /// the slowest shard bounds a merged answer, so an unbounded read
    /// against one dead shard would stall every fan-out.
    pub fn with_read_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.read_timeout = Some(timeout);
        if let Some(conn) = &self.conn {
            // SO_RCVTIMEO lives on the socket, so setting it through the
            // writer half covers the cloned reader too.
            conn.writer.set_read_timeout(self.read_timeout).ok();
        }
        self
    }

    /// Attaches a [`RetryPolicy`]: typed requests that come back
    /// [`ClientError::Overloaded`] are retried with capped exponential
    /// backoff + jitter, honoring the server's `Retry-After`.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        // xorshift needs a non-zero state.
        self.jitter_state = policy.seed | 1;
        self.retry = Some(policy);
        self
    }

    /// Backoff retries performed so far (429s replayed under the
    /// [`RetryPolicy`]).
    pub fn retries_attempted(&self) -> u64 {
        self.retries_attempted
    }

    /// The next jitter factor in `[1 − j, 1 + j]` from the deterministic
    /// xorshift64 stream.
    fn jitter_factor(&mut self, jitter: f64) -> f64 {
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        1.0 - jitter + 2.0 * jitter * unit
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.read_timeout).ok();
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some(Conn {
            reader,
            writer: stream,
        });
        Ok(())
    }

    /// Sends one request and returns `(status, body)`. Reuses the
    /// keep-alive connection. Only `GET`s are retried on a fresh
    /// connection after a transport failure: a failed non-idempotent
    /// request may already have been executed server-side (the response
    /// was lost, not necessarily the request), so replaying it is the
    /// caller's decision. The typed `predict*` helpers opt into the
    /// retry because prediction is pure; [`Client::reload`] never
    /// retries.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Io`] / [`ClientError::Protocol`] on
    /// transport failures. Non-2xx statuses are returned as `Ok`; typed
    /// helpers layer [`ClientError::Api`] on top.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        self.request_with_retry(method, path, body, method.eq_ignore_ascii_case("GET"))
    }

    fn request_with_retry(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        retry: bool,
    ) -> Result<(u16, String), ClientError> {
        self.request_full(method, path, body, retry)
            .map(|(status, body, _)| (status, body))
    }

    fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        retry: bool,
    ) -> Result<(u16, String, Option<u64>), ClientError> {
        match self.try_request(method, path, body) {
            Ok(r) => Ok(r),
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) if retry => {
                // One retry on a fresh connection (try_request dropped
                // the broken one).
                self.reconnect()?;
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String, Option<u64>), ClientError> {
        if self.conn.is_none() {
            self.reconnect()?;
        }
        let result = {
            let conn = self.conn.as_mut().expect("connected above");
            Self::roundtrip(conn, method, path, body)
        };
        match result {
            Ok((status, body, keep_alive, retry_after)) => {
                if !keep_alive {
                    self.conn = None;
                }
                Ok((status, body, retry_after))
            }
            Err(e) => {
                // A broken connection is stale state: drop it so the
                // caller (or the retry above) starts clean.
                self.conn = None;
                Err(e)
            }
        }
    }

    fn roundtrip(
        conn: &mut Conn,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String, bool, Option<u64>), ClientError> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: slide\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        conn.writer.write_all(head.as_bytes())?;
        conn.writer.write_all(body.as_bytes())?;
        conn.writer.flush()?;

        let status_line = read_line(&mut conn.reader)?;
        let mut parts = status_line.split_whitespace();
        let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
            return Err(ClientError::Protocol(format!(
                "bad status line {status_line:?}"
            )));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(ClientError::Protocol(format!(
                "bad status line {status_line:?}"
            )));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad status {status:?}")))?;
        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut retry_after = None;
        loop {
            let header = read_line(&mut conn.reader)?;
            if header.is_empty() {
                break;
            }
            let Some((name, value)) = header.split_once(':') else {
                return Err(ClientError::Protocol(format!("bad header {header:?}")));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => {
                    content_length = value
                        .parse()
                        .map_err(|_| ClientError::Protocol("bad content-length".into()))?;
                }
                "connection" if value.eq_ignore_ascii_case("close") => keep_alive = false,
                // Delta-seconds form only (the API never sends a date).
                "retry-after" => retry_after = value.parse().ok(),
                _ => {}
            }
        }
        let mut body = vec![0u8; content_length];
        conn.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol("non-utf8 response body".into()))?;
        Ok((status, body, keep_alive, retry_after))
    }

    fn expect_2xx(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        retry: bool,
    ) -> Result<String, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.expect_2xx_once(method, path, body, retry) {
                Err(ClientError::Overloaded {
                    retry_after_secs,
                    message,
                }) => {
                    let Some(policy) = self.retry else {
                        return Err(ClientError::Overloaded {
                            retry_after_secs,
                            message,
                        });
                    };
                    if attempt >= policy.max_retries {
                        return Err(ClientError::Overloaded {
                            retry_after_secs,
                            message,
                        });
                    }
                    let wait = policy
                        .wait_before(attempt, retry_after_secs)
                        .mul_f64(self.jitter_factor(policy.jitter))
                        .min(policy.max_delay);
                    std::thread::sleep(wait);
                    self.retries_attempted += 1;
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    fn expect_2xx_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        retry: bool,
    ) -> Result<String, ClientError> {
        let (status, body, retry_after) = self.request_full(method, path, body, retry)?;
        if (200..300).contains(&status) {
            Ok(body)
        } else {
            let (code, message) = wire::decode_error_body(&body);
            if status == 429 {
                return Err(ClientError::Overloaded {
                    retry_after_secs: retry_after,
                    message,
                });
            }
            Err(ClientError::Api {
                status,
                code,
                message,
            })
        }
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer.
    pub fn healthz(&mut self) -> Result<Health, ClientError> {
        let body = self.expect_2xx("GET", "/healthz", None, true)?;
        let v =
            json::parse(&body).map_err(|e| ClientError::Protocol(format!("healthz body: {e}")))?;
        let epoch = v
            .get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("healthz missing epoch".into()))?;
        Ok(Health { epoch })
    }

    /// `GET /readyz`: `Ok(true)` when the server is ready to take
    /// traffic, `Ok(false)` when it answered 503 (draining, or too many
    /// consecutive reload failures).
    ///
    /// # Errors
    ///
    /// Transport failures only — a not-ready answer is data, not an
    /// error.
    pub fn readyz(&mut self) -> Result<bool, ClientError> {
        let (status, _body) = self.request("GET", "/readyz", None)?;
        Ok((200..300).contains(&status))
    }

    /// `POST /v1/predict` with one input.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer ([`ClientError::Api`]).
    pub fn predict(
        &mut self,
        features: &SparseVector,
        top_k: Option<usize>,
    ) -> Result<PredictResponse, ClientError> {
        self.predict_batch(std::slice::from_ref(features), top_k)
    }

    /// `POST /v1/predict` with a batch of inputs (a single input uses
    /// the wire's single form).
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer ([`ClientError::Api`]).
    pub fn predict_batch(
        &mut self,
        features: &[SparseVector],
        top_k: Option<usize>,
    ) -> Result<PredictResponse, ClientError> {
        let req = PredictRequest {
            inputs: features.to_vec(),
            top_k,
        };
        let body = wire::encode_predict_request(&req);
        // Prediction is a pure function of the snapshot, so replaying it
        // after a broken keep-alive connection is safe.
        let resp = self.expect_2xx("POST", "/v1/predict", Some(&body), true)?;
        wire::decode_predict_response(&resp)
            .map_err(|e| ClientError::Protocol(format!("predict body: {e}")))
    }

    /// `POST /v1/reload` with a snapshot path; returns the new epoch.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer ([`ClientError::Api`]).
    pub fn reload(&mut self, snapshot_path: &str) -> Result<u64, ClientError> {
        let mut body = String::from("{\"path\":");
        json::push_escaped(&mut body, snapshot_path);
        body.push('}');
        // Never auto-replayed: a lost response does not mean a lost
        // request, and a duplicate reload swaps the engine twice.
        let resp = self.expect_2xx("POST", "/v1/reload", Some(&body), false)?;
        let v =
            json::parse(&resp).map_err(|e| ClientError::Protocol(format!("reload body: {e}")))?;
        v.get("epoch")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("reload missing epoch".into()))
    }

    /// `GET /v1/stats`, parsed as raw JSON.
    ///
    /// # Errors
    ///
    /// Transport failures or a non-2xx answer.
    pub fn stats_json(&mut self) -> Result<Json, ClientError> {
        let body = self.expect_2xx("GET", "/v1/stats", None, true)?;
        json::parse(&body).map_err(|e| ClientError::Protocol(format!("stats body: {e}")))
    }
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed",
        )));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::time::Duration;

    /// A canned one-response-per-connection server: reads one request
    /// head, writes the scripted response verbatim, closes.
    fn scripted_server(responses: Vec<String>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for response in responses {
                let (mut stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 || line.trim_end().is_empty() {
                        break;
                    }
                }
                stream.write_all(response.as_bytes()).unwrap();
            }
        });
        addr
    }

    #[test]
    fn a_429_maps_to_the_typed_overloaded_error() {
        let body = "{\"error\":{\"code\":\"overloaded\",\"message\":\"queue full\"}}";
        let addr = scripted_server(vec![format!(
            "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\nRetry-After: 7\r\n\r\n{}",
            body.len(),
            body
        )]);
        let mut client = Client::connect(addr).unwrap();
        match client.healthz() {
            Err(ClientError::Overloaded {
                retry_after_secs,
                message,
            }) => {
                assert_eq!(retry_after_secs, Some(7));
                assert_eq!(message, "queue full");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn retry_policy_replays_429_with_backoff_until_success() {
        let reject = "{\"error\":{\"code\":\"overloaded\",\"message\":\"queue full\"}}";
        let ok = "{\"api_version\":1,\"status\":\"ok\",\"epoch\":5}";
        // Two 429s (Connection: close so the next attempt reconnects to
        // the scripted listener), then a 200.
        let rejection = format!(
            "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\nRetry-After: 0\r\n\r\n{}",
            reject.len(),
            reject
        );
        let addr = scripted_server(vec![
            rejection.clone(),
            rejection,
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
                ok.len(),
                ok
            ),
        ]);
        let mut client = Client::connect(addr).unwrap().with_retry_policy(
            RetryPolicy::default()
                .with_max_retries(3)
                .with_delays(Duration::from_millis(1), Duration::from_millis(10)),
        );
        let health = client.healthz().expect("retries must reach the 200");
        assert_eq!(health.epoch, 5);
        assert_eq!(client.retries_attempted(), 2);
    }

    #[test]
    fn without_a_policy_a_429_is_not_retried() {
        let reject = "{\"error\":{\"code\":\"overloaded\",\"message\":\"queue full\"}}";
        let addr = scripted_server(vec![format!(
            "HTTP/1.1 429 Too Many Requests\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
            reject.len(),
            reject
        )]);
        let mut client = Client::connect(addr).unwrap();
        assert!(matches!(
            client.healthz(),
            Err(ClientError::Overloaded { .. })
        ));
        assert_eq!(client.retries_attempted(), 0);
    }

    #[test]
    fn retry_waits_honor_retry_after_under_the_cap() {
        let policy = RetryPolicy::default()
            .with_delays(Duration::from_millis(10), Duration::from_millis(500));
        // Backoff doubles from the base...
        assert_eq!(policy.wait_before(0, None), Duration::from_millis(10));
        assert_eq!(policy.wait_before(2, None), Duration::from_millis(40));
        // ...a larger Retry-After wins...
        assert_eq!(
            policy.wait_before(0, Some(0)),
            Duration::from_millis(10),
            "zero Retry-After falls back to the backoff"
        );
        // ...and the cap bounds everything, including Retry-After.
        assert_eq!(policy.wait_before(30, None), Duration::from_millis(500));
        assert_eq!(
            policy.wait_before(0, Some(3600)),
            Duration::from_millis(500)
        );
    }

    #[test]
    fn connection_close_is_honored_and_the_next_request_reconnects() {
        let first = "{\"api_version\":1,\"status\":\"ok\",\"epoch\":3}";
        let second = "{\"api_version\":1,\"status\":\"ok\",\"epoch\":4}";
        let addr = scripted_server(vec![
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                first.len(),
                first
            ),
            format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: keep-alive\r\n\r\n{}",
                second.len(),
                second
            ),
        ]);
        let mut client = Client::connect(addr).unwrap();
        // First answer says close: the client must drop the connection
        // and transparently dial a fresh one for the next request.
        assert_eq!(client.healthz().unwrap().epoch, 3);
        assert_eq!(client.healthz().unwrap().epoch, 4);
    }
}
