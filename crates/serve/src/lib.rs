//! # slide-serve
//!
//! The serving layer of the SLIDE reproduction: loads a frozen
//! [`slide_core::Network`] snapshot and answers top-k classification
//! requests with sub-linear LSH-retrieval inference — in process or over
//! the wire.
//!
//! The paper trains with adaptive sparsity; this crate closes the loop by
//! *serving* with it. Where a brute-force deployment scores every output
//! class per request (O(classes)), a [`ServingEngine`] hashes the request,
//! retrieves the LSH bucket union under a probe budget, and scores only
//! those candidates — the same sub-linear economics SLIDE exploits in
//! training, now behind a versioned service API:
//!
//! * [`engine::ServingEngine`] — a frozen network + a
//!   [`slide_core::WorkspacePool`]; every fallible path returns a typed
//!   [`ServeError`] that maps 1:1 onto an HTTP status;
//! * [`batch::BatchServer`] — a micro-batching queue over a worker thread
//!   pool for concurrent in-process callers;
//! * [`handle::EngineHandle`] — epoch-counted atomic engine swapping:
//!   snapshot hot-reload with zero request downtime (plus a file-watcher
//!   poll loop);
//! * [`http::HttpServer`] — an event-driven HTTP/1.1 front-end on a
//!   dependency-free epoll/poll readiness loop ([`net`]) with
//!   per-connection incremental parsing ([`conn`]): every
//!   `POST /v1/predict` feeds one shared admission queue draining
//!   through the [`batch::BatchServer`], so concurrent singles from
//!   *different connections* coalesce into fused batch row passes.
//!   Speaks the versioned [`wire`] protocol (`POST /v1/predict`,
//!   `GET /healthz`, `GET /readyz`, `GET /v1/stats`, `POST /v1/reload`)
//!   with backpressure (`429` + `Retry-After`), idle/slow-loris
//!   timeouts, and graceful drain; [`client::Client`] is its blocking
//!   counterpart (with an opt-in [`RetryPolicy`] for backoff on `429`);
//! * [`router::Router`] — scatter-gather serving over *sliced* output
//!   layers (`slide_core::snapshot::slice_snapshot`): each shard server
//!   holds one contiguous neuron range, the router fans every
//!   `POST /v1/predict` across the fleet and merges the per-shard top-k
//!   lists into an answer bit-identical to one full box's, failing
//!   typed (`503 shard_unavailable` / `504 merge_timeout`) rather than
//!   merging partially;
//! * [`fault`] — a runtime fault-injection switchboard ([`FaultPlan`])
//!   the chaos drills use to prove the recovery paths: panic-isolated
//!   supervised workers, snapshot quarantine + last-good rollback, and
//!   load-adaptive query-budget degradation ([`DegradeOptions`]);
//! * [`json`] — the hand-rolled, dependency-free JSON both sides parse
//!   and print (floats cross the wire bit-exactly).
//!
//! ## Example
//!
//! ```
//! use slide_core::config::{LshLayerConfig, NetworkConfig};
//! use slide_core::Network;
//! use slide_data::synth::{generate, SyntheticConfig};
//! use slide_serve::{ServeOptions, ServingEngine};
//!
//! let data = generate(&SyntheticConfig::tiny().with_seed(1));
//! let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
//!     .hidden(16)
//!     .output_lsh(LshLayerConfig::simhash(3, 8))
//!     .build()?;
//! let network = Network::new(config)?;
//!
//! // Round-trip through the snapshot format, as a deployment would.
//! let engine = ServingEngine::from_snapshot_bytes(
//!     &network.to_snapshot_bytes(),
//!     ServeOptions::default(),
//! )?;
//! let answer = engine.predict(&data.test.examples()[0].features)?;
//! assert!(answer.topk.len() <= engine.options().top_k);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Serving the same engine over HTTP with hot reload:
//!
//! ```no_run
//! use std::sync::Arc;
//! use slide_serve::http::{HttpOptions, HttpServer};
//! use slide_serve::{EngineHandle, ServeOptions};
//!
//! let handle = Arc::new(EngineHandle::from_snapshot_file(
//!     "model.slidesnap",
//!     ServeOptions::default(),
//! )?);
//! let server = HttpServer::serve(Arc::clone(&handle), "0.0.0.0:8080", HttpOptions::default())?;
//! // ... later: hot-swap a retrained model with zero downtime.
//! handle.reload_from_file("model.slidesnap")?;
//! # server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod client;
pub mod conn;
pub mod engine;
pub mod error;
pub mod fault;
pub mod handle;
pub mod http;
pub mod json;
pub mod net;
pub mod router;
pub mod wire;

pub use batch::{BatchOptions, BatchServer, DegradeOptions, RequestHandle, ServerStats};
pub use client::{Client, ClientError, Health, RetryPolicy};
pub use engine::{EngineStats, Prediction, ServeOptions, ServingEngine};
pub use error::ServeError;
pub use fault::{FaultPlan, PublishFault};
pub use handle::{EngineHandle, SnapshotWatcher};
pub use http::{HttpOptions, HttpServer, HttpStats};
pub use router::{Router, RouterOptions, RouterStats};
pub use wire::{PredictRequest, PredictResponse, WirePrediction, API_VERSION};
