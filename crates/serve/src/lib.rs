//! # slide-serve
//!
//! The serving layer of the SLIDE reproduction: loads a frozen
//! [`slide_core::Network`] snapshot and answers top-k classification
//! requests with sub-linear LSH-retrieval inference.
//!
//! The paper trains with adaptive sparsity; this crate closes the loop by
//! *serving* with it. Where a brute-force deployment scores every output
//! class per request (O(classes)), a [`ServingEngine`] hashes the request,
//! retrieves the LSH bucket union under a probe budget, and scores only
//! those candidates — the same sub-linear economics SLIDE exploits in
//! training, now behind a request/response API:
//!
//! * [`engine::ServingEngine`] — a frozen network + a
//!   [`slide_core::WorkspacePool`]; blocking
//!   [`engine::ServingEngine::predict`] returns a [`slide_core::TopK`]
//!   with per-request latency, and counters aggregate throughput;
//! * [`batch::BatchServer`] — a micro-batching queue over a worker thread
//!   pool: concurrent callers enqueue, workers drain requests in batches
//!   (amortizing wakeups and keeping every core busy), each caller gets
//!   its answer through a private channel.
//!
//! ## Example
//!
//! ```
//! use slide_core::config::{LshLayerConfig, NetworkConfig};
//! use slide_core::Network;
//! use slide_data::synth::{generate, SyntheticConfig};
//! use slide_serve::{ServeOptions, ServingEngine};
//!
//! let data = generate(&SyntheticConfig::tiny().with_seed(1));
//! let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
//!     .hidden(16)
//!     .output_lsh(LshLayerConfig::simhash(3, 8))
//!     .build()?;
//! let network = Network::new(config)?;
//!
//! // Round-trip through the snapshot format, as a deployment would.
//! let engine = ServingEngine::from_snapshot_bytes(
//!     &network.to_snapshot_bytes(),
//!     ServeOptions::default(),
//! )?;
//! let answer = engine.predict(&data.test.examples()[0].features);
//! assert!(answer.topk.len() <= engine.options().top_k);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batch;
pub mod engine;

pub use batch::{BatchOptions, BatchServer, RequestHandle, ServerStats};
pub use engine::{EngineStats, Prediction, ServeOptions, ServingEngine};
