//! Hand-rolled, dependency-free JSON — the wire format's substrate.
//!
//! The container has no serde, so the service speaks JSON through this
//! module: a recursive-descent parser into a [`Json`] tree (with a depth
//! limit so crafted payloads cannot blow the stack) and string-building
//! encode helpers. Floats are written with Rust's shortest round-trip
//! `Display`, which means an `f32` survives encode → parse-as-`f64` →
//! narrow-to-`f32` *bit-exactly* — the end-to-end test pins served
//! predictions to in-process predictions at the bit level through this
//! property.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object member order is preserved; lookups are
/// linear (wire payloads have a handful of keys).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key, or `None` if absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure: a message and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &'static [u8], v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the unescaped run in one slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

// ---------------------------------------------------------------------
// Encoding helpers.

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f32` using the shortest decimal that round-trips (Rust's
/// `Display`); non-finite values, which JSON cannot express, encode as
/// `null`.
pub fn push_f32(out: &mut String, v: f32) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Narrows a parsed JSON number back to the `f32` it was encoded from.
/// Exact for values written by [`push_f32`]: the shortest round-trip
/// decimal of an `f32`, parsed as `f64`, still lies inside that `f32`'s
/// rounding interval, so the narrowing conversion recovers it bit-for-bit.
pub fn f64_to_f32(v: f64) -> f32 {
    v as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] x",
            "01x",
            "\"\\q\"",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert_eq!(parse(&deep).unwrap_err().message, "nesting too deep");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(
            parse(r#""\ud834\udd1e""#).unwrap(),
            Json::Str("\u{1D11E}".into())
        );
        assert!(parse(r#""\ud834""#).is_err());
    }

    #[test]
    fn escape_round_trip() {
        let original = "quote \" backslash \\ newline \n tab \t unit \u{1} ok";
        let mut encoded = String::new();
        push_escaped(&mut encoded, original);
        assert_eq!(parse(&encoded).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn f32_round_trip_is_bit_exact() {
        let cases = [
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            std::f32::consts::PI,
            f32::MIN_POSITIVE,
            f32::MAX,
            1.000_000_1,
            -3.402_823e38,
            1e-40, // subnormal
        ];
        for v in cases {
            let mut s = String::new();
            push_f32(&mut s, v);
            let parsed = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(
                f64_to_f32(parsed).to_bits(),
                v.to_bits(),
                "value {v} encoded as {s}"
            );
        }
    }

    #[test]
    fn non_finite_encodes_as_null() {
        let mut s = String::new();
        push_f32(&mut s, f32::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_u64(), None);
    }
}
