//! An event-driven HTTP/1.1 front-end with cross-connection
//! micro-batching.
//!
//! The old thread-per-connection server handled every connection in
//! isolation: singles from different clients never shared a fused batch
//! row pass, and concurrency was capped at the thread count. This server
//! inverts that. An acceptor thread hands nonblocking connections to a
//! small set of event-loop threads (a dependency-free epoll/poll
//! readiness loop — [`crate::net`]); each connection is a state machine
//! over an incremental parser ([`crate::conn`]); and every parsed
//! `POST /v1/predict` input becomes a job in ONE shared admission queue
//! draining through the micro-batching [`BatchServer`]. Under concurrent
//! load, singles from *different connections* coalesce into one fused
//! (quantized, when active) batch row pass — and because the batch
//! kernels accumulate each example in a fixed order independent of batch
//! composition, a coalesced answer is bit-identical to the same request
//! answered alone. HTTP batch requests ride the same queue, one job per
//! input, so they coalesce with the singles instead of bypassing them.
//!
//! The transport protects itself: a bounded admission queue rejects with
//! `429` + `Retry-After` before any compute (the connection stays open),
//! a per-request timeout cuts off slow-loris writers, an idle sweep
//! closes quiet keep-alive connections, and shutdown drains in-flight
//! requests before closing. The server owns nothing but transport — it
//! forwards each [`ServeError`]'s *own* status mapping and lets hot
//! reloads swap the engine under it with zero request downtime.
//!
//! Routes (`v1` wire schema):
//!
//! * `POST /v1/predict` — single or batch sparse inputs;
//! * `GET  /healthz`    — liveness + current model epoch;
//! * `GET  /readyz`     — readiness: `503` while draining or after
//!   [`READY_MAX_RELOAD_FAILURES`] consecutive snapshot-reload failures
//!   (the last-good engine still answers; routing should look away);
//! * `GET  /v1/stats`   — engine, reload, transport, and admission-queue
//!   counters (queue depth, coalesced-batch histogram, 429/timeout
//!   counts);
//! * `POST /v1/reload`  — `{"path": "..."}`: load a snapshot file and
//!   atomically swap it in (operator-trusted, like the rest of the
//!   unauthenticated API).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::batch::{
    BatchOptions, BatchServer, DegradeOptions, ReplyCallback, ServerStats, RETRY_AFTER_SECS,
};
use crate::conn::{ParseStatus, ParsedRequest, RequestParser};
use crate::engine::Prediction;
use crate::error::ServeError;
use crate::fault::FaultPlan;
use crate::handle::EngineHandle;
use crate::json;
use crate::net::{raw_fd, Event, Poller, WakeReceiver, Waker};
use crate::wire;

/// Transport limits and timeouts for an [`HttpServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpOptions {
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// How long an idle keep-alive connection may sit between requests
    /// before the server closes it.
    pub read_timeout: Duration,
    /// How long a single request may take to arrive once its first byte
    /// has been read (the slow-loris bound): a connection that dribbles
    /// header bytes is answered `400` and closed.
    pub request_timeout: Duration,
    /// Most simultaneous connections; beyond it, new connections are
    /// answered `429` and closed immediately.
    pub max_connections: usize,
    /// Event-loop threads. One loop comfortably drives thousands of
    /// connections; raise it only on many-core machines where the loop
    /// itself saturates.
    pub event_loops: usize,
    /// Worker threads draining the shared admission queue.
    pub workers: usize,
    /// Most jobs one worker drains into a single fused batch.
    pub max_batch: usize,
    /// Admission-queue bound: jobs beyond it are rejected with `429` +
    /// `Retry-After` before any compute.
    pub queue_capacity: usize,
    /// How long shutdown waits for in-flight requests to finish before
    /// force-closing connections.
    pub drain_timeout: Duration,
    /// Load-adaptive degradation policy for the admission queue
    /// (disabled by default — see [`DegradeOptions`]). When a request is
    /// answered under a shrunken budget, the response carries an
    /// `X-Slide-Degraded` header with the level.
    pub degrade: DegradeOptions,
}

impl Default for HttpOptions {
    fn default() -> Self {
        Self {
            max_body_bytes: 8 << 20,
            read_timeout: Duration::from_secs(30),
            request_timeout: Duration::from_secs(10),
            max_connections: 16_384,
            event_loops: 1,
            workers: 2,
            max_batch: 32,
            queue_capacity: 1024,
            drain_timeout: Duration::from_secs(5),
            degrade: DegradeOptions::default(),
        }
    }
}

/// Consecutive snapshot-reload failures after which `/readyz` reports
/// not-ready: the serving engine is still the last-good model (requests
/// keep answering), but an operator's rollout should stop routing new
/// traffic here until a good snapshot lands.
pub const READY_MAX_RELOAD_FAILURES: u64 = 3;

/// Most responses one connection may have in flight (pipelining bound);
/// past it, the loop stops reading from that connection until responses
/// drain.
const PIPELINE_CAP: usize = 64;

/// Largest number of unread request bytes drained before an error close.
const DRAIN_CAP_BYTES: usize = 1 << 20;

/// The event loop's tick: timeout sweeps and shutdown checks run at
/// least this often even with no socket activity.
const SWEEP_INTERVAL: Duration = Duration::from_millis(250);

/// Transport-level counters of a running [`HttpServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpStats {
    /// Connections accepted.
    pub connections: u64,
    /// Connections currently open.
    pub current_connections: u64,
    /// Requests parsed (any outcome).
    pub requests: u64,
    /// Responses with a 2xx status.
    pub responses_2xx: u64,
    /// Responses with a 4xx status (429s included).
    pub responses_4xx: u64,
    /// Responses with a 5xx status.
    pub responses_5xx: u64,
    /// Backpressure responses (admission queue or connection limit).
    pub responses_429: u64,
    /// Connections cut by the idle or slow-loris timeout.
    pub timeouts: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    current_connections: AtomicU64,
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    responses_429: AtomicU64,
    timeouts: AtomicU64,
}

struct Shared {
    handle: Arc<EngineHandle>,
    options: HttpOptions,
    shutdown: AtomicBool,
    counters: Counters,
}

/// A message posted into an event loop's inbox from another thread.
enum Msg {
    /// A freshly accepted connection from the acceptor.
    Conn(TcpStream),
    /// One predict job's answer from a batch worker.
    Done {
        conn: u64,
        req: u64,
        index: usize,
        result: Box<Result<Prediction, ServeError>>,
        epoch: u64,
    },
    /// A reload finished on its one-off thread.
    ReloadDone {
        conn: u64,
        req: u64,
        result: Result<u64, ServeError>,
    },
}

/// Cross-thread mailbox of one event loop: batch-worker callbacks and
/// the acceptor post here and wake the loop's poller.
struct Inbox {
    queue: Mutex<Vec<Msg>>,
    waker: Waker,
}

impl Inbox {
    fn post(&self, msg: Msg) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(msg);
        self.waker.wake();
    }
}

/// Everything an event loop (and its connections) needs to dispatch.
struct LoopCtx {
    shared: Arc<Shared>,
    batch: Arc<BatchServer>,
    inbox: Arc<Inbox>,
}

/// The running server: an acceptor thread, `event_loops` readiness-loop
/// threads, and the admission queue's worker pool.
/// [`HttpServer::shutdown`] (or drop) stops accepting, drains in-flight
/// requests, and joins all of it.
pub struct HttpServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    loops: Vec<std::thread::JoinHandle<()>>,
    inboxes: Vec<Arc<Inbox>>,
    batch: Option<Arc<BatchServer>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `handle` in background threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error, or the poller-creation error (notably
    /// [`std::io::ErrorKind::Unsupported`] on non-unix targets).
    pub fn serve<A: ToSocketAddrs>(
        handle: Arc<EngineHandle>,
        addr: A,
        options: HttpOptions,
    ) -> std::io::Result<Self> {
        Self::serve_inner(handle, addr, options, None)
    }

    /// [`HttpServer::serve`] with a fault-injection plan wired into the
    /// worker pool and snapshot publisher, for chaos drills. The plan is
    /// inert (single relaxed load per drain) until armed.
    ///
    /// # Errors
    ///
    /// Same as [`HttpServer::serve`].
    pub fn serve_with_faults<A: ToSocketAddrs>(
        handle: Arc<EngineHandle>,
        addr: A,
        options: HttpOptions,
        faults: Arc<FaultPlan>,
    ) -> std::io::Result<Self> {
        Self::serve_inner(handle, addr, options, Some(faults))
    }

    fn serve_inner<A: ToSocketAddrs>(
        handle: Arc<EngineHandle>,
        addr: A,
        options: HttpOptions,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Self> {
        assert!(options.event_loops > 0, "event_loops must be positive");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Best-effort: the 10K-connection target needs the fd budget.
        // The listener + loops + wakers cost a handful on top.
        crate::net::raise_nofile_limit(options.max_connections as u64 + 64).ok();
        let batch_options = BatchOptions::default()
            .with_workers(options.workers)
            .with_max_batch(options.max_batch)
            .with_queue_cap(options.queue_capacity)
            .with_degrade(options.degrade);
        let batch = Arc::new(match faults {
            Some(plan) => {
                BatchServer::over_handle_with_faults(Arc::clone(&handle), batch_options, plan)
            }
            None => BatchServer::over_handle(Arc::clone(&handle), batch_options),
        });
        let shared = Arc::new(Shared {
            handle,
            options,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        // Create every poller before spawning anything, so a failure
        // (e.g. unsupported target) leaves no threads behind.
        let mut plumbing = Vec::new();
        for _ in 0..options.event_loops {
            let poller = Poller::new()?;
            let (waker, receiver) = Waker::pair()?;
            plumbing.push((poller, receiver, waker));
        }
        let mut loops = Vec::new();
        let mut inboxes = Vec::new();
        for (poller, receiver, waker) in plumbing {
            let inbox = Arc::new(Inbox {
                queue: Mutex::new(Vec::new()),
                waker,
            });
            let ctx = LoopCtx {
                shared: Arc::clone(&shared),
                batch: Arc::clone(&batch),
                inbox: Arc::clone(&inbox),
            };
            loops.push(std::thread::spawn(move || {
                event_loop(&ctx, poller, &receiver)
            }));
            inboxes.push(inbox);
        }
        let accept_shared = Arc::clone(&shared);
        let accept_inboxes = inboxes.clone();
        let accept =
            std::thread::spawn(move || accept_loop(&accept_shared, &listener, &accept_inboxes));
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
            loops,
            inboxes,
            batch: Some(batch),
        })
    }

    /// The bound address (resolves the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine handle this server fronts.
    pub fn handle(&self) -> &Arc<EngineHandle> {
        &self.shared.handle
    }

    /// A snapshot of the transport counters.
    pub fn stats(&self) -> HttpStats {
        let c = &self.shared.counters;
        HttpStats {
            connections: c.connections.load(Ordering::Relaxed),
            current_connections: c.current_connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            responses_2xx: c.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: c.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: c.responses_5xx.load(Ordering::Relaxed),
            responses_429: c.responses_429.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
        }
    }

    /// A snapshot of the shared admission queue's batching statistics
    /// (coalesced batch sizes, queue depth, rejections).
    pub fn batch_stats(&self) -> ServerStats {
        self.batch.as_ref().map(|b| b.stats()).unwrap_or_default()
    }

    /// Stops accepting, drains in-flight requests (bounded by
    /// [`HttpOptions::drain_timeout`]), closes connections, and joins
    /// every thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
    }

    fn begin_shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() with a throwaway connection. A
        // wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform, so aim the wake-up at loopback on the bound
        // port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        TcpStream::connect(wake).ok();
        if let Some(t) = self.accept.take() {
            t.join().ok();
        }
        // The loops notice the flag, drain their connections, and exit.
        for inbox in &self.inboxes {
            inbox.waker.wake();
        }
        for t in self.loops.drain(..) {
            t.join().ok();
        }
        // Only after the loops are gone (no more completion callbacks
        // needed) may the worker pool go down.
        if let Some(batch) = self.batch.take() {
            if let Ok(b) = Arc::try_unwrap(batch) {
                b.shutdown();
            }
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

// ---------------------------------------------------------------------
// Acceptor.

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, inboxes: &[Arc<Inbox>]) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let c = &shared.counters;
        if c.current_connections.load(Ordering::Relaxed) >= shared.options.max_connections as u64 {
            reject_connection(c, stream);
            continue;
        }
        c.connections.fetch_add(1, Ordering::Relaxed);
        c.current_connections.fetch_add(1, Ordering::Relaxed);
        stream.set_nodelay(true).ok();
        if stream.set_nonblocking(true).is_err() {
            c.current_connections.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        inboxes[next].post(Msg::Conn(stream));
        next = (next + 1) % inboxes.len();
    }
}

/// Over the connection limit: a minimal blocking `429` so the client
/// learns *why* instead of seeing an unexplained reset.
fn reject_connection(counters: &Counters, mut stream: TcpStream) {
    let e = ServeError::Overloaded {
        retry_after_secs: RETRY_AFTER_SECS,
    };
    let bytes = render_response(
        counters,
        e.http_status(),
        &wire::encode_error_body(&e),
        false,
        Some(RETRY_AFTER_SECS),
        0,
    );
    stream.set_write_timeout(Some(Duration::from_secs(1))).ok();
    stream.write_all(&bytes).ok();
}

// ---------------------------------------------------------------------
// Event loop.

const WAKER_TOKEN: u64 = 0;

fn event_loop(ctx: &LoopCtx, mut poller: Poller, receiver: &WakeReceiver) {
    if poller
        .register(receiver.fd(), WAKER_TOKEN, true, false)
        .is_err()
    {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = WAKER_TOKEN + 1;
    let mut events: Vec<Event> = Vec::new();
    let mut msgs: Vec<Msg> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;
    loop {
        events.clear();
        if poller.wait(&mut events, Some(SWEEP_INTERVAL)).is_err() {
            break;
        }
        receiver.drain();

        // Cross-thread messages first: job completions free slots that
        // this tick's writable events can then flush.
        msgs.clear();
        {
            let mut q = ctx
                .inbox
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            msgs.append(&mut q);
        }
        for msg in msgs.drain(..) {
            match msg {
                Msg::Conn(stream) => {
                    let token = next_token;
                    next_token += 1;
                    let fd = raw_fd(&stream);
                    if poller.register(fd, token, true, false).is_err() {
                        ctx.shared
                            .counters
                            .current_connections
                            .fetch_sub(1, Ordering::Relaxed);
                        continue; // dropped: accept-level failure
                    }
                    conns.insert(token, Conn::new(stream, token));
                }
                Msg::Done {
                    conn,
                    req,
                    index,
                    result,
                    epoch,
                } => {
                    // The connection may have died while the job was in
                    // flight; its answer just evaporates.
                    if let Some(c) = conns.get_mut(&conn) {
                        let keep = c.apply_done(req, index, *result, epoch, ctx);
                        settle(&mut poller, &mut conns, &ctx.shared, conn, keep);
                    }
                }
                Msg::ReloadDone { conn, req, result } => {
                    if let Some(c) = conns.get_mut(&conn) {
                        let keep = c.apply_reload_done(req, result, ctx);
                        settle(&mut poller, &mut conns, &ctx.shared, conn, keep);
                    }
                }
            }
        }

        for ev in &events {
            if ev.token == WAKER_TOKEN {
                continue;
            }
            if let Some(c) = conns.get_mut(&ev.token) {
                let keep = c.on_event(ev.readable, ev.writable, ctx);
                settle(&mut poller, &mut conns, &ctx.shared, ev.token, keep);
            }
        }

        // Timeout sweep.
        let now = Instant::now();
        ids.clear();
        ids.extend(conns.keys().copied());
        for &id in &ids {
            if let Some(c) = conns.get_mut(&id) {
                let keep = c.sweep(now, ctx);
                settle(&mut poller, &mut conns, &ctx.shared, id, keep);
            }
        }

        // Graceful drain: stop reading new requests, finish what's
        // pending, close as connections empty out, force-close at the
        // deadline.
        if ctx.shared.shutdown.load(Ordering::SeqCst) {
            if drain_deadline.is_none() {
                drain_deadline = Some(now + ctx.shared.options.drain_timeout);
                ids.clear();
                ids.extend(conns.keys().copied());
                for &id in &ids {
                    if let Some(c) = conns.get_mut(&id) {
                        c.stop_reading = true;
                        let keep = !c.is_quiescent();
                        settle(&mut poller, &mut conns, &ctx.shared, id, keep);
                    }
                }
            }
            if conns.is_empty() {
                break;
            }
            if drain_deadline.is_some_and(|d| now >= d) {
                break;
            }
        }
    }
    // Whatever is left (force-closed on drain timeout, or a poller
    // failure) still decrements the gauge.
    for (_, c) in conns.drain() {
        poller.deregister(raw_fd(&c.stream)).ok();
        ctx.shared
            .counters
            .current_connections
            .fetch_sub(1, Ordering::Relaxed);
    }
}

/// Applies a connection's post-event fate: close it, or sync its
/// read/write interest with the poller.
fn settle(
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    shared: &Shared,
    id: u64,
    keep: bool,
) {
    let Some(c) = conns.get_mut(&id) else { return };
    if !keep {
        poller.deregister(raw_fd(&c.stream)).ok();
        conns.remove(&id);
        shared
            .counters
            .current_connections
            .fetch_sub(1, Ordering::Relaxed);
        return;
    }
    let want = (c.want_read(), c.want_write());
    if want != (c.reg_read, c.reg_write) {
        poller.modify(raw_fd(&c.stream), id, want.0, want.1).ok();
        (c.reg_read, c.reg_write) = want;
    }
}

// ---------------------------------------------------------------------
// Per-connection state machine.

/// One queued response slot. Responses go out strictly in request order
/// (HTTP/1.1 pipelining), so a slot holds either a finished response or
/// the aggregation state of one still being answered.
enum Slot {
    /// A predict request waiting for its jobs to come back from the
    /// admission queue.
    Predict(PredictSlot),
    /// A reload running on its one-off thread.
    Reload { req: u64, keep_alive: bool },
    /// A rendered response ready to write.
    Ready {
        bytes: Vec<u8>,
        keep_alive: bool,
        error_close: bool,
    },
}

struct PredictSlot {
    req: u64,
    expected: usize,
    got: usize,
    predictions: Vec<Option<Prediction>>,
    /// The newest epoch that answered any of this request's jobs (for a
    /// single-input request this is exact; a multi-input request racing
    /// a hot reload reports the newest model that contributed).
    epoch: u64,
    /// First job error wins; the whole request answers with it.
    error: Option<ServeError>,
    keep_alive: bool,
}

struct Conn {
    stream: TcpStream,
    token: u64,
    parser: RequestParser,
    /// Bytes read but not yet consumed by the parser (pipelined requests
    /// beyond [`PIPELINE_CAP`] wait here).
    inbuf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    pending: VecDeque<Slot>,
    next_req: u64,
    last_activity: Instant,
    /// When the currently-arriving request started (slow-loris clock).
    req_started: Option<Instant>,
    /// The server decided to parse no more bytes from this connection
    /// (error close pending, EOF handled, or shutdown drain).
    stop_reading: bool,
    /// The peer half-closed its write side (EOF observed).
    read_closed: bool,
    /// The response currently in `out` closes the connection once
    /// flushed.
    close_after_flush: bool,
    /// That close is an error close: half-close write and drain reads so
    /// the kernel doesn't RST the in-flight error response away.
    error_close: bool,
    /// Post-error drain mode, counting drained bytes toward
    /// [`DRAIN_CAP_BYTES`].
    draining: Option<usize>,
    reg_read: bool,
    reg_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, token: u64) -> Self {
        Self {
            stream,
            token,
            parser: RequestParser::new(0), // replaced per server below
            inbuf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: VecDeque::new(),
            next_req: 0,
            last_activity: Instant::now(),
            req_started: None,
            stop_reading: false,
            read_closed: false,
            close_after_flush: false,
            error_close: false,
            draining: None,
            reg_read: true,
            reg_write: false,
        }
    }

    fn want_read(&self) -> bool {
        self.draining.is_some()
            || (!self.stop_reading && !self.read_closed && self.pending.len() < PIPELINE_CAP)
    }

    fn want_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Nothing left to answer or flush: during shutdown drain this
    /// connection can close.
    fn is_quiescent(&self) -> bool {
        self.pending.is_empty() && self.out_pos >= self.out.len() && self.draining.is_none()
    }

    fn on_event(&mut self, readable: bool, writable: bool, ctx: &LoopCtx) -> bool {
        if readable && !self.on_readable(ctx) {
            return false;
        }
        if (writable || readable) && !self.try_flush(ctx) {
            return false;
        }
        true
    }

    fn on_readable(&mut self, ctx: &LoopCtx) -> bool {
        self.last_activity = Instant::now();
        if let Some(drained) = self.draining {
            return self.drain_reads(drained);
        }
        if self.stop_reading || self.read_closed {
            // A level-triggered event raced an interest change; ignore.
            return true;
        }
        // The parser was constructed before the options were known; size
        // it on first contact.
        if self.next_req == 0 && self.parser.is_idle() && self.inbuf.is_empty() {
            self.parser = RequestParser::new(ctx.shared.options.max_body_bytes);
        }
        let mut buf = [0u8; 16 << 10];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&buf[..n]);
                    // Bound one tick's buffering: past the cap the
                    // kernel's socket buffer holds the rest (level-
                    // triggered readiness re-fires).
                    if self.inbuf.len() >= DRAIN_CAP_BYTES {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        self.feed(ctx);
        if self.read_closed && self.inbuf.is_empty() && !self.stop_reading {
            match self.parser.eof_error() {
                // Clean between-requests EOF: finish what's pending,
                // then close.
                None => {
                    self.stop_reading = true;
                }
                Some(what) => {
                    self.push_error_close(
                        ctx,
                        &ServeError::BadRequest {
                            message: what.into(),
                        },
                    );
                }
            }
        }
        true
    }

    /// Post-error read drain (see [`Conn::push_error_close`]): consume
    /// the client's unread request bytes until EOF or the cap, so the
    /// kernel doesn't RST away the error response. Returns `false` when
    /// the connection is done.
    fn drain_reads(&mut self, mut drained: usize) -> bool {
        let mut sink = [0u8; 8 << 10];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => return false,
                Ok(n) => {
                    drained += n;
                    if drained >= DRAIN_CAP_BYTES {
                        return false;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
        self.draining = Some(drained);
        true
    }

    /// Runs the incremental parser over the buffered bytes, dispatching
    /// every complete request (bounded by [`PIPELINE_CAP`] in-flight
    /// responses).
    fn feed(&mut self, ctx: &LoopCtx) {
        while !self.stop_reading && !self.inbuf.is_empty() && self.pending.len() < PIPELINE_CAP {
            let (consumed, status) = self.parser.advance(&self.inbuf);
            self.inbuf.drain(..consumed);
            match status {
                ParseStatus::NeedMore => break,
                ParseStatus::Request(req) => {
                    self.req_started = None;
                    self.dispatch(*req, ctx);
                }
                ParseStatus::Malformed(what) => {
                    self.push_error_close(
                        ctx,
                        &ServeError::BadRequest {
                            message: what.into(),
                        },
                    );
                    return;
                }
                ParseStatus::TooLarge => {
                    self.push_error_close(
                        ctx,
                        &ServeError::PayloadTooLarge {
                            limit: ctx.shared.options.max_body_bytes,
                        },
                    );
                    return;
                }
            }
        }
        // Start (or clear) the slow-loris clock: it runs while a request
        // is partially arrived.
        if self.parser.is_idle() {
            self.req_started = None;
        } else if self.req_started.is_none() {
            self.req_started = Some(Instant::now());
        }
    }

    /// Queues a terminal error response: answer, then close with the
    /// half-close + bounded-drain courtesy.
    fn push_error_close(&mut self, ctx: &LoopCtx, e: &ServeError) {
        let bytes = render_response(
            &ctx.shared.counters,
            e.http_status(),
            &wire::encode_error_body(e),
            false,
            retry_after(e),
            0,
        );
        self.pending.push_back(Slot::Ready {
            bytes,
            keep_alive: false,
            error_close: true,
        });
        self.stop_reading = true;
        self.inbuf.clear();
        self.req_started = None;
    }

    /// Queues a normal (route-level) response; route errors keep the
    /// connection alive — only transport-level failures close it.
    fn push_response(&mut self, ctx: &LoopCtx, status: u16, body: &str, keep_alive: bool) {
        let bytes = render_response(&ctx.shared.counters, status, body, keep_alive, None, 0);
        self.pending.push_back(Slot::Ready {
            bytes,
            keep_alive,
            error_close: false,
        });
    }

    fn push_err(&mut self, ctx: &LoopCtx, e: &ServeError, keep_alive: bool) {
        let bytes = render_response(
            &ctx.shared.counters,
            e.http_status(),
            &wire::encode_error_body(e),
            keep_alive,
            retry_after(e),
            0,
        );
        self.pending.push_back(Slot::Ready {
            bytes,
            keep_alive,
            error_close: false,
        });
    }

    fn dispatch(&mut self, req: ParsedRequest, ctx: &LoopCtx) {
        ctx.shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = req.keep_alive && !ctx.shared.shutdown.load(Ordering::SeqCst);
        // Probes and load balancers append query strings
        // (`/healthz?t=1`); routing matches on the path alone.
        let path = req.path.split('?').next().unwrap_or("");
        match (req.method.as_str(), path) {
            ("GET", "/healthz") => {
                let body = format!(
                    "{{\"api_version\":{},\"status\":\"ok\",\"epoch\":{}}}",
                    wire::API_VERSION,
                    ctx.shared.handle.epoch()
                );
                self.push_response(ctx, 200, &body, keep_alive);
            }
            ("GET", "/readyz") => {
                // Readiness is routing advice, distinct from /healthz
                // liveness: a draining server and one whose snapshot
                // source keeps failing both still *answer* (last-good
                // engine), but should stop receiving new traffic.
                let draining = ctx.shared.shutdown.load(Ordering::SeqCst);
                let failures = ctx.shared.handle.consecutive_reload_failures();
                let reason = if draining {
                    Some("draining")
                } else if failures >= READY_MAX_RELOAD_FAILURES {
                    Some("reload_failures")
                } else {
                    None
                };
                let ready = reason.is_none();
                let body = format!(
                    "{{\"api_version\":{},\"ready\":{},\"epoch\":{},\
                     \"consecutive_reload_failures\":{}{}}}",
                    wire::API_VERSION,
                    ready,
                    ctx.shared.handle.epoch(),
                    failures,
                    reason
                        .map(|r| format!(",\"reason\":\"{r}\""))
                        .unwrap_or_default(),
                );
                self.push_response(ctx, if ready { 200 } else { 503 }, &body, keep_alive);
            }
            ("GET", "/v1/stats") => {
                let body = stats_body(&ctx.shared, &ctx.batch);
                self.push_response(ctx, 200, &body, keep_alive);
            }
            ("POST", "/v1/predict") => self.dispatch_predict(&req.body, keep_alive, ctx),
            ("POST", "/v1/reload") => self.dispatch_reload(&req.body, keep_alive, ctx),
            (_, "/healthz" | "/readyz" | "/v1/stats" | "/v1/predict" | "/v1/reload") => self
                .push_err(
                    ctx,
                    &ServeError::MethodNotAllowed {
                        method: req.method,
                        path: req.path,
                    },
                    keep_alive,
                ),
            _ => self.push_err(
                ctx,
                &ServeError::UnknownRoute { path: req.path },
                keep_alive,
            ),
        }
    }

    /// Every input becomes one job in the shared admission queue, so
    /// singles from this and every other connection coalesce into the
    /// same fused batch passes (and HTTP batches don't bypass the
    /// queue). Validation runs here, before enqueue — a malformed
    /// request answers immediately and costs no queue slot.
    fn dispatch_predict(&mut self, body: &str, keep_alive: bool, ctx: &LoopCtx) {
        let wreq = match wire::decode_predict_request(body) {
            Ok(r) => r,
            Err(e) => return self.push_err(ctx, &e, keep_alive),
        };
        let engine = ctx.shared.handle.engine();
        let k = wreq.top_k.unwrap_or_else(|| engine.default_top_k());
        for f in &wreq.inputs {
            if let Err(e) = engine.validate_request(f, k) {
                return self.push_err(ctx, &e, keep_alive);
            }
        }
        let expected = wreq.inputs.len();
        let req = self.next_req;
        self.next_req += 1;
        let token = self.token;
        let jobs = wreq
            .inputs
            .into_iter()
            .enumerate()
            .map(|(index, f)| {
                let inbox = Arc::clone(&ctx.inbox);
                let cb: ReplyCallback = Box::new(move |result, epoch| {
                    inbox.post(Msg::Done {
                        conn: token,
                        req,
                        index,
                        result: Box::new(result),
                        epoch,
                    });
                });
                (f, k, cb)
            })
            .collect();
        match ctx.batch.submit_callbacks(jobs) {
            Ok(()) => self.pending.push_back(Slot::Predict(PredictSlot {
                req,
                expected,
                got: 0,
                predictions: vec![None; expected],
                epoch: 0,
                error: None,
                keep_alive,
            })),
            // Backpressure: 429 + Retry-After, connection intact — an
            // overloaded server must never answer load with a hangup.
            Err(e) => self.push_err(ctx, &e, keep_alive),
        }
    }

    /// Reloads run on a one-off thread (snapshot IO + table builds take
    /// an event loop's eternity) and post back through the inbox.
    fn dispatch_reload(&mut self, body: &str, keep_alive: bool, ctx: &LoopCtx) {
        let parsed = json::parse(body).map_err(|e| ServeError::BadRequest {
            message: format!("invalid json: {e}"),
        });
        let path = match parsed.as_ref().map(|v| {
            v.get("path")
                .and_then(json::Json::as_str)
                .map(str::to_string)
        }) {
            Ok(Some(p)) => p,
            Ok(None) => {
                return self.push_err(
                    ctx,
                    &ServeError::BadRequest {
                        message: "reload body needs a \"path\" string".into(),
                    },
                    keep_alive,
                )
            }
            Err(e) => return self.push_err(ctx, e, keep_alive),
        };
        let req = self.next_req;
        self.next_req += 1;
        let token = self.token;
        let inbox = Arc::clone(&ctx.inbox);
        let handle = Arc::clone(&ctx.shared.handle);
        std::thread::spawn(move || {
            let result = handle.reload_from_file(&path);
            inbox.post(Msg::ReloadDone {
                conn: token,
                req,
                result,
            });
        });
        self.pending.push_back(Slot::Reload { req, keep_alive });
    }

    /// One predict job came back; when the whole request's jobs are in,
    /// the slot renders to a response.
    fn apply_done(
        &mut self,
        req: u64,
        index: usize,
        result: Result<Prediction, ServeError>,
        epoch: u64,
        ctx: &LoopCtx,
    ) -> bool {
        let mut complete_at = None;
        for (i, s) in self.pending.iter_mut().enumerate() {
            if let Slot::Predict(p) = s {
                if p.req == req {
                    p.got += 1;
                    p.epoch = p.epoch.max(epoch);
                    match result {
                        Ok(pr) => p.predictions[index] = Some(pr),
                        Err(e) => {
                            if p.error.is_none() {
                                p.error = Some(e);
                            }
                        }
                    }
                    if p.got == p.expected {
                        complete_at = Some(i);
                    }
                    break;
                }
            }
        }
        if let Some(i) = complete_at {
            let Slot::Predict(p) = &mut self.pending[i] else {
                // lint:allow(no-panic-paths): complete_at was set inside a
                // Slot::Predict match just above; this re-match exists only
                // for the borrow checker.
                unreachable!("complete_at points at the matched predict slot");
            };
            // Re-check shutdown: a response finishing during drain
            // closes its connection.
            let keep_alive = p.keep_alive && !ctx.shared.shutdown.load(Ordering::SeqCst);
            let (status, body) = match p.error.take() {
                Some(e) => (e.http_status(), wire::encode_error_body(&e)),
                None => {
                    // Every job reported Ok, so every slot should be
                    // filled; if one is missing anyway, answer a typed
                    // 500 rather than panic the event loop.
                    let predictions: Option<Vec<Prediction>> =
                        p.predictions.iter_mut().map(|slot| slot.take()).collect();
                    match predictions {
                        Some(predictions) => (
                            200,
                            wire::encode_predict_response(&wire::response_from_predictions(
                                p.epoch,
                                &predictions,
                            )),
                        ),
                        None => {
                            let e = ServeError::WorkerPanicked;
                            (e.http_status(), wire::encode_error_body(&e))
                        }
                    }
                }
            };
            // Advisory header: the level *now*, which is the level that
            // answered (or raced within one drain of it).
            let bytes = render_response(
                &ctx.shared.counters,
                status,
                &body,
                keep_alive,
                None,
                ctx.batch.degradation_level(),
            );
            self.pending[i] = Slot::Ready {
                bytes,
                keep_alive,
                error_close: false,
            };
        }
        self.try_flush(ctx)
    }

    fn apply_reload_done(
        &mut self,
        req: u64,
        result: Result<u64, ServeError>,
        ctx: &LoopCtx,
    ) -> bool {
        let mut complete_at = None;
        for (i, s) in self.pending.iter_mut().enumerate() {
            if let Slot::Reload { req: r, .. } = s {
                if *r == req {
                    complete_at = Some(i);
                    break;
                }
            }
        }
        if let Some(i) = complete_at {
            let Slot::Reload { keep_alive, .. } = self.pending[i] else {
                // lint:allow(no-panic-paths): complete_at was set inside a
                // Slot::Reload match just above; this re-match exists only
                // for the borrow checker.
                unreachable!("complete_at points at the matched reload slot");
            };
            let keep_alive = keep_alive && !ctx.shared.shutdown.load(Ordering::SeqCst);
            let (status, body) = match result {
                Ok(epoch) => (
                    200,
                    format!(
                        "{{\"api_version\":{},\"epoch\":{epoch}}}",
                        wire::API_VERSION
                    ),
                ),
                Err(e) => (e.http_status(), wire::encode_error_body(&e)),
            };
            let bytes = render_response(&ctx.shared.counters, status, &body, keep_alive, None, 0);
            self.pending[i] = Slot::Ready {
                bytes,
                keep_alive,
                error_close: false,
            };
        }
        self.try_flush(ctx)
    }

    /// Writes whatever is writable: drains the out buffer, promotes the
    /// next in-order ready slot, and — once responses free pipeline
    /// slots — parses more buffered bytes. Returns `false` when the
    /// connection is finished.
    fn try_flush(&mut self, ctx: &LoopCtx) -> bool {
        loop {
            while self.out_pos < self.out.len() {
                match self.stream.write(&self.out[self.out_pos..]) {
                    Ok(0) => return false,
                    Ok(n) => self.out_pos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return self.still_alive()
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
            if !self.out.is_empty() {
                // A whole response just flushed.
                self.out.clear();
                self.out_pos = 0;
                self.last_activity = Instant::now();
                if self.close_after_flush {
                    if self.error_close {
                        // Half-close so the response arrives, then drain
                        // the client's unread bytes (closing with bytes
                        // queued would RST the response away).
                        self.stream.shutdown(Shutdown::Write).ok();
                        self.close_after_flush = false;
                        self.draining = Some(0);
                        return true;
                    }
                    return false;
                }
            }
            if matches!(self.pending.front(), Some(Slot::Ready { .. })) {
                let Some(Slot::Ready {
                    bytes,
                    keep_alive,
                    error_close,
                }) = self.pending.pop_front()
                else {
                    // lint:allow(no-panic-paths): the matches! guard on the
                    // front slot succeeded one line up; pop_front returns
                    // that same slot.
                    unreachable!("front matched Ready");
                };
                self.out = bytes;
                self.out_pos = 0;
                self.close_after_flush = !keep_alive;
                self.error_close = error_close;
                continue;
            }
            // Responses freed pipeline slots: buffered bytes may hold
            // complete requests whose answers can go out right now.
            if !self.inbuf.is_empty() && !self.stop_reading && self.pending.len() < PIPELINE_CAP {
                let before = self.pending.len();
                self.feed(ctx);
                if self.pending.len() != before {
                    continue;
                }
            }
            return self.still_alive();
        }
    }

    /// Whether anything is left to do; a connection that will never
    /// produce another byte in either direction closes.
    fn still_alive(&self) -> bool {
        if self.draining.is_some() {
            return true;
        }
        let done_reading = self.stop_reading || self.read_closed;
        !(done_reading && self.pending.is_empty() && self.out_pos >= self.out.len())
    }

    /// Periodic timeout check. Returns `false` to close.
    fn sweep(&mut self, now: Instant, ctx: &LoopCtx) -> bool {
        let options = &ctx.shared.options;
        if self.draining.is_some() {
            // A client that neither finishes sending nor closes gets cut
            // off once the idle bound passes.
            if now.duration_since(self.last_activity) > options.read_timeout {
                return false;
            }
            return true;
        }
        if let Some(t0) = self.req_started {
            if now.duration_since(t0) > options.request_timeout {
                // Slow loris: the request started but never finished
                // arriving.
                ctx.shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                self.push_error_close(
                    ctx,
                    &ServeError::BadRequest {
                        message: "request timed out".into(),
                    },
                );
                return self.try_flush(ctx);
            }
        }
        if self.parser.is_idle()
            && self.pending.is_empty()
            && self.out_pos >= self.out.len()
            && self.inbuf.is_empty()
            && now.duration_since(self.last_activity) > options.read_timeout
        {
            // Idle keep-alive hygiene: a quiet close between requests.
            ctx.shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        true
    }
}

// ---------------------------------------------------------------------
// Response rendering.

fn retry_after(e: &ServeError) -> Option<u64> {
    match e {
        ServeError::Overloaded { retry_after_secs } => Some(*retry_after_secs),
        _ => None,
    }
}

pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Renders one response (head + body in one buffer → one write syscall
/// per response with TCP_NODELAY on) and counts it. A nonzero
/// `degraded` level adds an `X-Slide-Degraded` header so clients can
/// tell a full-budget answer from a load-shedding one.
fn render_response(
    counters: &Counters,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_secs: Option<u64>,
    degraded: u32,
) -> Vec<u8> {
    match status / 100 {
        2 => counters.responses_2xx.fetch_add(1, Ordering::Relaxed),
        4 => counters.responses_4xx.fetch_add(1, Ordering::Relaxed),
        _ => counters.responses_5xx.fetch_add(1, Ordering::Relaxed),
    };
    if status == 429 {
        counters.responses_429.fetch_add(1, Ordering::Relaxed);
    }
    let mut response = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    if let Some(secs) = retry_after_secs {
        response.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    if degraded > 0 {
        response.push_str(&format!("X-Slide-Degraded: {degraded}\r\n"));
    }
    response.push_str("\r\n");
    response.push_str(body);
    response.into_bytes()
}

fn stats_body(shared: &Shared, batch: &BatchServer) -> String {
    let (engine, epoch) = shared.handle.current();
    let e = engine.stats();
    let b = batch.stats();
    let c = &shared.counters;
    let mut hist = String::from("[");
    for (i, n) in b.batch_hist.iter().enumerate() {
        if i > 0 {
            hist.push(',');
        }
        hist.push_str(&n.to_string());
    }
    hist.push(']');
    format!(
        concat!(
            "{{\"api_version\":{},\"epoch\":{},\"reloads\":{},\"reload_failures\":{},",
            "\"last_good_epoch\":{},\"consecutive_reload_failures\":{},",
            "\"quarantined_snapshots\":{},",
            "\"engine\":{{\"requests\":{},\"mean_latency_us\":{:.1},\"max_latency_us\":{:.1},",
            "\"dense_fallbacks\":{}}},",
            "\"http\":{{\"connections\":{},\"current_connections\":{},\"requests\":{},",
            "\"responses_2xx\":{},\"responses_4xx\":{},\"responses_5xx\":{},",
            "\"responses_429\":{},\"timeouts\":{}}},",
            "\"batch\":{{\"queue_depth\":{},\"queue_capacity\":{},\"rejected\":{},",
            "\"shed\":{},\"requests\":{},\"batches\":{},\"mean_batch\":{:.3},",
            "\"largest_batch\":{},\"mean_queue_wait_us\":{:.1},",
            "\"worker_panics\":{},\"worker_respawns\":{},",
            "\"degradation_level\":{},\"degraded_requests\":{},",
            "\"batch_hist\":{}}}}}"
        ),
        wire::API_VERSION,
        epoch,
        shared.handle.reloads(),
        shared.handle.reload_failures(),
        shared.handle.last_good_epoch(),
        shared.handle.consecutive_reload_failures(),
        shared.handle.quarantined(),
        e.requests,
        e.mean_latency().as_secs_f64() * 1e6,
        Duration::from_nanos(e.max_latency_ns).as_secs_f64() * 1e6,
        e.dense_fallbacks,
        c.connections.load(Ordering::Relaxed),
        c.current_connections.load(Ordering::Relaxed),
        c.requests.load(Ordering::Relaxed),
        c.responses_2xx.load(Ordering::Relaxed),
        c.responses_4xx.load(Ordering::Relaxed),
        c.responses_5xx.load(Ordering::Relaxed),
        c.responses_429.load(Ordering::Relaxed),
        c.timeouts.load(Ordering::Relaxed),
        b.queue_depth,
        shared.options.queue_capacity,
        b.rejected,
        b.shed,
        b.requests,
        b.batches,
        b.mean_batch,
        b.largest_batch,
        b.mean_queue_wait.as_secs_f64() * 1e6,
        b.worker_panics,
        b.worker_respawns,
        b.degradation_level,
        b.degraded_requests,
        hist,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::engine::{ServeOptions, ServingEngine};
    use slide_core::config::{LshLayerConfig, NetworkConfig};
    use slide_core::Network;
    use slide_data::synth::{generate, SyntheticConfig};
    use slide_data::SparseVector;
    use std::io::BufRead;

    fn tiny_server() -> (HttpServer, slide_data::synth::SyntheticData) {
        tiny_server_with(HttpOptions::default())
    }

    fn tiny_server_with(options: HttpOptions) -> (HttpServer, slide_data::synth::SyntheticData) {
        let data = generate(&SyntheticConfig::tiny().with_seed(21));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(22)
            .build()
            .unwrap();
        let engine = ServingEngine::new(
            Network::new(config).unwrap(),
            ServeOptions::default().with_top_k(3),
        );
        let handle = Arc::new(EngineHandle::new(engine));
        let server = HttpServer::serve(handle, "127.0.0.1:0", options).unwrap();
        (server, data)
    }

    /// Reads one full HTTP response off a raw socket: status, headers,
    /// Content-Length-bounded body.
    fn read_response(
        reader: &mut std::io::BufReader<TcpStream>,
    ) -> Option<(u16, Vec<String>, String)> {
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            reader.read_line(&mut h).ok()?;
            let h = h.trim_end().to_string();
            if h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok()?;
                }
            }
            headers.push(h);
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).ok()?;
        Some((status, headers, String::from_utf8(body).ok()?))
    }

    #[test]
    fn healthz_predict_and_stats_over_one_keep_alive_connection() {
        let (server, data) = tiny_server();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let health = client.healthz().unwrap();
        assert_eq!(health.epoch, 1);

        // Probe-style query strings route to the same handler.
        let (status, _) = client.request("GET", "/healthz?probe=1", None).unwrap();
        assert_eq!(status, 200);

        let ex = &data.test.examples()[0];
        let resp = client.predict(&ex.features, None).unwrap();
        assert_eq!(resp.epoch, 1);
        assert_eq!(resp.predictions.len(), 1);
        assert!(!resp.predictions[0].classes.is_empty());
        assert!(resp.predictions[0].classes.len() <= 3);

        let batch: Vec<SparseVector> = data
            .test
            .iter()
            .take(4)
            .map(|e| e.features.clone())
            .collect();
        let resp = client.predict_batch(&batch, Some(2)).unwrap();
        assert_eq!(resp.predictions.len(), 4);
        assert!(resp.predictions.iter().all(|p| p.classes.len() <= 2));

        let stats = client.stats_json().unwrap();
        assert_eq!(stats.get("epoch").and_then(json::Json::as_u64), Some(1));
        // 3 requests so far on this connection (health, predict, batch)
        // plus this stats call in flight; the transport saw ≥ 4.
        let http_requests = stats
            .get("http")
            .and_then(|h| h.get("requests"))
            .and_then(json::Json::as_u64)
            .unwrap();
        assert!(http_requests >= 4);
        // One connection, many requests: keep-alive worked.
        let conns = stats
            .get("http")
            .and_then(|h| h.get("connections"))
            .and_then(json::Json::as_u64)
            .unwrap();
        assert_eq!(conns, 1);
        // The new admission-queue stats are visible over the wire: the
        // predict requests above went through the queue.
        let batch_requests = stats
            .get("batch")
            .and_then(|b| b.get("requests"))
            .and_then(json::Json::as_u64)
            .unwrap();
        assert!(
            batch_requests >= 5,
            "singles + batch inputs: {batch_requests}"
        );
        assert!(stats
            .get("batch")
            .and_then(|b| b.get("batch_hist"))
            .is_some());
        server.shutdown();
    }

    #[test]
    fn error_statuses_map_one_to_one() {
        let (server, data) = tiny_server();
        let mut client = Client::connect(server.local_addr()).unwrap();

        // Malformed JSON → 400 bad_request.
        let (status, body) = client
            .request("POST", "/v1/predict", Some("this is not json"))
            .unwrap();
        assert_eq!(status, 400);
        assert_eq!(wire::decode_error_body(&body).0, "bad_request");

        // Out-of-range feature index → 422 feature_index_out_of_range.
        let input_dim = server.handle().engine().input_dim();
        let bad = format!("{{\"indices\":[{input_dim}],\"values\":[1.0]}}");
        let (status, body) = client.request("POST", "/v1/predict", Some(&bad)).unwrap();
        assert_eq!(status, 422);
        assert_eq!(
            wire::decode_error_body(&body).0,
            "feature_index_out_of_range"
        );

        // top_k 0 → 422 invalid_top_k.
        let (status, body) = client
            .request(
                "POST",
                "/v1/predict",
                Some("{\"indices\":[0],\"values\":[1.0],\"top_k\":0}"),
            )
            .unwrap();
        assert_eq!(status, 422);
        assert_eq!(wire::decode_error_body(&body).0, "invalid_top_k");

        // Unknown route → 404; wrong method → 405.
        let (status, _) = client.request("GET", "/v2/predict", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client.request("PUT", "/healthz", None).unwrap();
        assert_eq!(status, 405);

        // Reload pointing at a missing file → 500 model_error; the old
        // engine keeps serving.
        let (status, body) = client
            .request(
                "POST",
                "/v1/reload",
                Some("{\"path\":\"/nonexistent/model.slidesnap\"}"),
            )
            .unwrap();
        assert_eq!(status, 500);
        assert_eq!(wire::decode_error_body(&body).0, "model_error");
        let ex = &data.test.examples()[0];
        assert!(client.predict(&ex.features, None).is_ok());
        assert_eq!(server.handle().epoch(), 1);
        server.shutdown();
    }

    #[test]
    fn oversized_body_rejected_with_413() {
        let (server, _) = tiny_server();
        let handle = Arc::clone(server.handle());
        let small = HttpServer::serve(
            handle,
            "127.0.0.1:0",
            HttpOptions {
                max_body_bytes: 64,
                read_timeout: Duration::from_secs(5),
                ..HttpOptions::default()
            },
        )
        .unwrap();
        let mut client = Client::connect(small.local_addr()).unwrap();
        let big = format!(
            "{{\"indices\":[0],\"values\":[1.0],\"pad\":\"{}\"}}",
            "x".repeat(256)
        );
        let (status, body) = client.request("POST", "/v1/predict", Some(&big)).unwrap();
        assert_eq!(status, 413);
        assert_eq!(wire::decode_error_body(&body).0, "payload_too_large");
        small.shutdown();
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let (server, _) = tiny_server();
        let addr = server.local_addr();
        server.shutdown();
        // The port is free again.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let (server, data) = tiny_server();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);

        let ex = &data.test.examples()[0];
        let predict = wire::encode_predict_request(&wire::PredictRequest {
            inputs: vec![ex.features.clone()],
            top_k: Some(2),
        });
        // Three requests in ONE write: the answers must come back
        // complete and in order.
        let burst = format!(
            "GET /healthz HTTP/1.1\r\n\r\n\
             POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}\
             GET /healthz HTTP/1.1\r\n\r\n",
            predict.len(),
            predict
        );
        writer.write_all(burst.as_bytes()).unwrap();
        writer.flush().unwrap();

        let (s1, _, b1) = read_response(&mut reader).unwrap();
        let (s2, _, b2) = read_response(&mut reader).unwrap();
        let (s3, _, b3) = read_response(&mut reader).unwrap();
        assert_eq!((s1, s2, s3), (200, 200, 200));
        assert!(b1.contains("\"status\":\"ok\""), "{b1}");
        assert!(b2.contains("\"predictions\""), "{b2}");
        assert!(b3.contains("\"status\":\"ok\""), "{b3}");
        server.shutdown();
    }

    #[test]
    fn overload_returns_429_with_retry_after_and_keeps_the_connection() {
        // queue_capacity 2 with a 4-input batch request: admission is
        // all-or-nothing, so the request deterministically overflows the
        // bound and answers 429 — while the connection stays usable.
        let (server, data) = tiny_server_with(HttpOptions {
            queue_capacity: 2,
            workers: 1,
            max_batch: 1,
            ..HttpOptions::default()
        });
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);

        let inputs: Vec<SparseVector> = data
            .test
            .iter()
            .take(4)
            .map(|e| e.features.clone())
            .collect();
        let body = wire::encode_predict_request(&wire::PredictRequest {
            inputs,
            top_k: Some(1),
        });
        let req = format!(
            "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        writer.write_all(req.as_bytes()).unwrap();
        let (status, headers, body) = read_response(&mut reader).unwrap();
        assert_eq!(status, 429);
        assert_eq!(wire::decode_error_body(&body).0, "overloaded");
        assert!(
            headers
                .iter()
                .any(|h| h.to_ascii_lowercase().starts_with("retry-after:")),
            "{headers:?}"
        );

        // The connection survived the rejection: a request that fits the
        // queue answers 200 on the same socket.
        let single = wire::encode_predict_request(&wire::PredictRequest {
            inputs: vec![data.test.examples()[0].features.clone()],
            top_k: Some(1),
        });
        let req = format!(
            "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            single.len(),
            single
        );
        writer.write_all(req.as_bytes()).unwrap();
        let (status, _, _) = read_response(&mut reader).unwrap();
        assert_eq!(status, 200);
        assert!(server.stats().responses_429 >= 1);
        assert!(server.batch_stats().rejected >= 4);
        server.shutdown();
    }

    #[test]
    fn slow_loris_is_cut_off_with_400() {
        let (server, _) = tiny_server_with(HttpOptions {
            request_timeout: Duration::from_millis(200),
            ..HttpOptions::default()
        });
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = std::io::BufReader::new(stream);
        // Half a request line, then silence.
        writer.write_all(b"GET /heal").unwrap();
        writer.flush().unwrap();
        // The sweep answers 400 and closes; allow a couple of ticks.
        let (status, _, body) = read_response(&mut reader).unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("timed out"), "{body}");
        // Then EOF.
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert!(server.stats().timeouts >= 1);
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_swept() {
        let (server, _) = tiny_server_with(HttpOptions {
            read_timeout: Duration::from_millis(200),
            ..HttpOptions::default()
        });
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream);
        // No bytes sent: the idle sweep closes the connection quietly
        // (EOF, no response bytes).
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert!(server.stats().timeouts >= 1);
        assert_eq!(server.stats().current_connections, 0);
        server.shutdown();
    }

    #[test]
    fn readyz_flips_not_ready_after_reload_failures_and_recovers() {
        let (server, _) = tiny_server();
        let mut client = Client::connect(server.local_addr()).unwrap();

        // Healthy server: ready.
        assert!(client.readyz().unwrap());

        // Drive consecutive reload failures past the readiness bound.
        for _ in 0..READY_MAX_RELOAD_FAILURES {
            let (status, _) = client
                .request(
                    "POST",
                    "/v1/reload",
                    Some("{\"path\":\"/nonexistent/model.slidesnap\"}"),
                )
                .unwrap();
            assert_eq!(status, 500);
        }
        assert!(!client.readyz().unwrap(), "3 consecutive failures");
        let (status, _, body) = {
            // Raw request to check the body shape of the 503.
            let stream = TcpStream::connect(server.local_addr()).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = std::io::BufReader::new(stream);
            writer.write_all(b"GET /readyz HTTP/1.1\r\n\r\n").unwrap();
            read_response(&mut reader).unwrap()
        };
        assert_eq!(status, 503);
        assert!(body.contains("\"reason\":\"reload_failures\""), "{body}");

        // /healthz stays liveness: still 200 with the old epoch, and
        // predict still answers from the last-good engine.
        let health = client.healthz().unwrap();
        assert_eq!(health.epoch, 1);

        // A good snapshot publishes; reloading it restores readiness.
        let dir = std::env::temp_dir().join(format!("slide-readyz-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.slidesnap");
        let bytes = server.handle().engine().network().to_snapshot_bytes();
        slide_core::snapshot::publish_bytes(&path, &bytes).unwrap();
        let (status, _) = client
            .request(
                "POST",
                "/v1/reload",
                Some(&format!("{{\"path\":\"{}\"}}", path.display())),
            )
            .unwrap();
        assert_eq!(status, 200);
        assert!(client.readyz().unwrap(), "good reload resets the streak");

        // Wrong method on the new route: 405, not 404.
        let (status, _) = client.request("POST", "/readyz", None).unwrap();
        assert_eq!(status, 405);

        // The new fault-tolerance stats fields are on the wire.
        let stats = client.stats_json().unwrap();
        assert_eq!(
            stats
                .get("consecutive_reload_failures")
                .and_then(json::Json::as_u64),
            Some(0)
        );
        assert_eq!(
            stats.get("last_good_epoch").and_then(json::Json::as_u64),
            Some(2)
        );
        assert!(stats
            .get("batch")
            .and_then(|b| b.get("worker_panics"))
            .is_some());
        assert!(stats
            .get("batch")
            .and_then(|b| b.get("degradation_level"))
            .is_some());
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cross_connection_singles_coalesce_into_batches() {
        // Many connections each fire one single concurrently; the shared
        // admission queue must merge them into multi-job drains.
        let (server, data) = tiny_server();
        let addr = server.local_addr();
        let data = Arc::new(data);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let data = Arc::clone(&data);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for i in 0..25 {
                        let ex = &data.test.examples()[(t * 25 + i) % data.test.len()];
                        client.predict(&ex.features, Some(2)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let b = server.batch_stats();
        assert_eq!(b.requests, 200);
        // With 8 concurrent senders on a shared queue, at least some
        // drains must have coalesced more than one connection's single.
        assert!(b.largest_batch > 1, "no cross-connection coalescing: {b:?}");
        server.shutdown();
    }
}
