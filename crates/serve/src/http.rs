//! A thread-per-connection `std::net` HTTP/1.1 front-end.
//!
//! The container has no async runtime, and it doesn't need one: SLIDE
//! serving is compute-bound (a request costs a forward pass, not a
//! database wait), so a blocking thread per keep-alive connection — the
//! model fwumious-style Rust servers use — saturates the cores with no
//! executor in the path. The server owns nothing but transport: it
//! parses requests, hands bodies to the versioned wire codec
//! ([`crate::wire`]), asks the [`EngineHandle`] for the current engine,
//! and forwards each [`ServeError`]'s *own* status mapping. Hot reloads
//! swap the engine under it with zero request downtime.
//!
//! Routes (`v1` wire schema):
//!
//! * `POST /v1/predict` — single or batch sparse inputs;
//! * `GET  /healthz`    — liveness + current model epoch;
//! * `GET  /v1/stats`   — engine, reload, and transport counters;
//! * `POST /v1/reload`  — `{"path": "..."}`: load a snapshot file and
//!   atomically swap it in (operator-trusted, like the rest of the
//!   unauthenticated API).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::ServeError;
use crate::handle::EngineHandle;
use crate::json;
use crate::wire;

/// Transport limits and timeouts for an [`HttpServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpOptions {
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// How long an idle keep-alive connection may sit between requests
    /// before the server closes it.
    pub read_timeout: Duration,
}

impl Default for HttpOptions {
    fn default() -> Self {
        Self {
            max_body_bytes: 8 << 20,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Longest accepted request line or header line, bytes.
const MAX_LINE_BYTES: usize = 8 << 10;

/// Transport-level counters of a running [`HttpServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed (any outcome).
    pub requests: u64,
    /// Responses with a 2xx status.
    pub responses_2xx: u64,
    /// Responses with a 4xx status.
    pub responses_4xx: u64,
    /// Responses with a 5xx status.
    pub responses_5xx: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
}

struct Shared {
    handle: Arc<EngineHandle>,
    options: HttpOptions,
    shutdown: AtomicBool,
    counters: Counters,
    /// Live connection streams, so shutdown can unblock their reads
    /// immediately instead of waiting out the idle timeout.
    open: Mutex<HashMap<u64, TcpStream>>,
}

/// The running server: an accept-loop thread plus one thread per live
/// connection. [`HttpServer::shutdown`] (or drop) stops the accept loop,
/// closes every open connection, and joins all of it.
pub struct HttpServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `handle` in background threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error.
    pub fn serve<A: ToSocketAddrs>(
        handle: Arc<EngineHandle>,
        addr: A,
        options: HttpOptions,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            handle,
            options,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            open: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&accept_shared, listener));
        Ok(Self {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine handle this server fronts.
    pub fn handle(&self) -> &Arc<EngineHandle> {
        &self.shared.handle
    }

    /// A snapshot of the transport counters.
    pub fn stats(&self) -> HttpStats {
        let c = &self.shared.counters;
        HttpStats {
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            responses_2xx: c.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: c.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: c.responses_5xx.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, closes live connections, and joins every thread.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
    }

    fn begin_shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept() with a throwaway connection. A
        // wildcard bind address (0.0.0.0 / ::) is not connectable on
        // every platform, so aim the wake-up at loopback on the bound
        // port instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        TcpStream::connect(wake).ok();
        // Unblock any connection thread sitting in a read.
        {
            let open = self
                .shared
                .open
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for stream in open.values() {
                stream.shutdown(Shutdown::Both).ok();
            }
        }
        if let Some(t) = self.accept.take() {
            t.join().ok();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.begin_shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    let mut workers = Vec::new();
    let mut next_id = 0u64;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let id = next_id;
        next_id += 1;
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared
                .open
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(id, clone);
        }
        let conn_shared = Arc::clone(shared);
        workers.push(std::thread::spawn(move || {
            serve_connection(&conn_shared, stream);
            conn_shared
                .open
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&id);
        }));
        // Reap finished connection threads so a long-lived server's
        // handle list tracks live connections, not connection history.
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        w.join().ok();
    }
}

struct Request {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

enum ReadOutcome {
    /// A complete request.
    Request(Box<Request>),
    /// The peer closed (or timed out) between requests — not an error.
    Closed,
    /// The bytes were not HTTP; answer 400 and close.
    Malformed(&'static str),
    /// The declared body exceeds the limit; answer 413 and close.
    TooLarge,
}

fn serve_connection(shared: &Shared, stream: TcpStream) {
    stream
        .set_read_timeout(Some(shared.options.read_timeout))
        .ok();
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match read_request(&mut reader, shared.options.max_body_bytes) {
            ReadOutcome::Closed => return,
            ReadOutcome::Malformed(what) => {
                let e = ServeError::BadRequest {
                    message: what.into(),
                };
                write_response(
                    shared,
                    &mut writer,
                    e.http_status(),
                    &wire::encode_error_body(&e),
                    false,
                );
                close_after_error(&mut reader, &writer);
                return;
            }
            ReadOutcome::TooLarge => {
                let e = ServeError::PayloadTooLarge {
                    limit: shared.options.max_body_bytes,
                };
                write_response(
                    shared,
                    &mut writer,
                    e.http_status(),
                    &wire::encode_error_body(&e),
                    false,
                );
                close_after_error(&mut reader, &writer);
                return;
            }
            ReadOutcome::Request(req) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let (status, body) = match route(shared, &req) {
                    Ok(body) => (200, body),
                    Err(e) => (e.http_status(), wire::encode_error_body(&e)),
                };
                let keep_alive = req.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
                if !write_response(shared, &mut writer, status, &body, keep_alive) || !keep_alive {
                    return;
                }
            }
        }
    }
}

/// Largest number of unread request bytes drained before an error close.
const DRAIN_CAP_BYTES: usize = 1 << 20;

/// Courteous close after a 400/413: closing a socket with unread request
/// bytes queued makes the kernel send RST, which discards the in-flight
/// error response before the client reads it. Half-close the write side
/// so the response flushes, then drain (bounded by [`DRAIN_CAP_BYTES`]
/// and the read timeout) until the client stops sending.
fn close_after_error(reader: &mut BufReader<TcpStream>, writer: &TcpStream) {
    writer.shutdown(Shutdown::Write).ok();
    let mut sink = [0u8; 8 << 10];
    let mut drained = 0usize;
    while drained < DRAIN_CAP_BYTES {
        match reader.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Reads one line (up to CRLF/LF), bounded by [`MAX_LINE_BYTES`].
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, &'static str> {
    let mut buf = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            // A timeout/reset between requests is a clean close; the
            // same error mid-line means a request was cut off.
            Err(_) if buf.is_empty() => return Ok(None),
            Err(_) => return Err("truncated request"),
        };
        if available.is_empty() {
            // EOF: clean only if nothing was read yet.
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err("truncated request")
            };
        }
        let upto = available.iter().position(|&b| b == b'\n');
        let take = upto.map_or(available.len(), |p| p + 1);
        buf.extend_from_slice(&available[..take]);
        reader.consume(take);
        if buf.len() > MAX_LINE_BYTES {
            return Err("line too long");
        }
        if upto.is_some() {
            while matches!(buf.last(), Some(b'\n' | b'\r')) {
                buf.pop();
            }
            return String::from_utf8(buf)
                .map(Some)
                .map_err(|_| "non-utf8 line");
        }
    }
}

fn read_request(reader: &mut BufReader<TcpStream>, max_body: usize) -> ReadOutcome {
    let line = match read_line(reader) {
        Ok(None) => return ReadOutcome::Closed,
        Ok(Some(l)) if l.is_empty() => return ReadOutcome::Malformed("empty request line"),
        Ok(Some(l)) => l,
        Err(what) => return ReadOutcome::Malformed(what),
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Malformed("malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed("unsupported protocol version");
    }
    let http_11 = version == "HTTP/1.1";
    let mut keep_alive = http_11;
    let mut content_length = 0usize;
    let mut too_large = false;
    loop {
        let header = match read_line(reader) {
            Ok(Some(l)) => l,
            Ok(None) => return ReadOutcome::Malformed("truncated headers"),
            Err(what) => return ReadOutcome::Malformed(what),
        };
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return ReadOutcome::Malformed("malformed header");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if n <= max_body => content_length = n,
                Ok(_) => too_large = true,
                Err(_) => return ReadOutcome::Malformed("bad content-length"),
            },
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "transfer-encoding" => {
                // Chunked bodies are out of scope for the v1 protocol.
                return ReadOutcome::Malformed("transfer-encoding not supported");
            }
            _ => {}
        }
    }
    if too_large {
        return ReadOutcome::TooLarge;
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return ReadOutcome::Malformed("truncated body");
    }
    let Ok(body) = String::from_utf8(body) else {
        return ReadOutcome::Malformed("non-utf8 body");
    };
    ReadOutcome::Request(Box::new(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    }))
}

fn route(shared: &Shared, req: &Request) -> Result<String, ServeError> {
    // Probes and load balancers append query strings (`/healthz?t=1`);
    // routing matches on the path alone.
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => Ok(format!(
            "{{\"api_version\":{},\"status\":\"ok\",\"epoch\":{}}}",
            wire::API_VERSION,
            shared.handle.epoch()
        )),
        ("GET", "/v1/stats") => Ok(stats_body(shared)),
        ("POST", "/v1/predict") => predict(shared, &req.body),
        ("POST", "/v1/reload") => reload(shared, &req.body),
        (_, "/healthz" | "/v1/stats" | "/v1/predict" | "/v1/reload") => {
            Err(ServeError::MethodNotAllowed {
                method: req.method.clone(),
                path: req.path.clone(),
            })
        }
        _ => Err(ServeError::UnknownRoute {
            path: req.path.clone(),
        }),
    }
}

fn predict(shared: &Shared, body: &str) -> Result<String, ServeError> {
    let req = wire::decode_predict_request(body)?;
    // One consistent (engine, epoch) pair for the whole request: a
    // concurrent reload swaps the handle but cannot touch this request's
    // engine, so the reported epoch always names the model that answered.
    let (engine, epoch) = shared.handle.current();
    let k = req.top_k.unwrap_or_else(|| engine.default_top_k());
    let predictions = if req.inputs.len() == 1 {
        vec![engine.predict_k(&req.inputs[0], k)?]
    } else {
        engine.predict_batch_k(&req.inputs, k)?
    };
    Ok(wire::encode_predict_response(
        &wire::response_from_predictions(epoch, &predictions),
    ))
}

fn reload(shared: &Shared, body: &str) -> Result<String, ServeError> {
    let v = json::parse(body).map_err(|e| ServeError::BadRequest {
        message: format!("invalid json: {e}"),
    })?;
    let path =
        v.get("path")
            .and_then(json::Json::as_str)
            .ok_or_else(|| ServeError::BadRequest {
                message: "reload body needs a \"path\" string".into(),
            })?;
    let epoch = shared.handle.reload_from_file(path)?;
    Ok(format!(
        "{{\"api_version\":{},\"epoch\":{epoch}}}",
        wire::API_VERSION
    ))
}

fn stats_body(shared: &Shared) -> String {
    let (engine, epoch) = shared.handle.current();
    let e = engine.stats();
    let c = &shared.counters;
    format!(
        concat!(
            "{{\"api_version\":{},\"epoch\":{},\"reloads\":{},\"reload_failures\":{},",
            "\"engine\":{{\"requests\":{},\"mean_latency_us\":{:.1},\"max_latency_us\":{:.1},",
            "\"dense_fallbacks\":{}}},",
            "\"http\":{{\"connections\":{},\"requests\":{},\"responses_2xx\":{},",
            "\"responses_4xx\":{},\"responses_5xx\":{}}}}}"
        ),
        wire::API_VERSION,
        epoch,
        shared.handle.reloads(),
        shared.handle.reload_failures(),
        e.requests,
        e.mean_latency().as_secs_f64() * 1e6,
        Duration::from_nanos(e.max_latency_ns).as_secs_f64() * 1e6,
        e.dense_fallbacks,
        c.connections.load(Ordering::Relaxed),
        c.requests.load(Ordering::Relaxed),
        c.responses_2xx.load(Ordering::Relaxed),
        c.responses_4xx.load(Ordering::Relaxed),
        c.responses_5xx.load(Ordering::Relaxed),
    )
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(
    shared: &Shared,
    writer: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> bool {
    let c = &shared.counters;
    match status / 100 {
        2 => c.responses_2xx.fetch_add(1, Ordering::Relaxed),
        4 => c.responses_4xx.fetch_add(1, Ordering::Relaxed),
        _ => c.responses_5xx.fetch_add(1, Ordering::Relaxed),
    };
    // Head and body go out in one write: with TCP_NODELAY on, separate
    // writes would cost a second syscall and a second small segment per
    // response.
    let mut response = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    response.push_str(body);
    writer.write_all(response.as_bytes()).is_ok() && writer.flush().is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::engine::{ServeOptions, ServingEngine};
    use slide_core::config::{LshLayerConfig, NetworkConfig};
    use slide_core::Network;
    use slide_data::synth::{generate, SyntheticConfig};
    use slide_data::SparseVector;

    fn tiny_server() -> (HttpServer, slide_data::synth::SyntheticData) {
        let data = generate(&SyntheticConfig::tiny().with_seed(21));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(22)
            .build()
            .unwrap();
        let engine = ServingEngine::new(
            Network::new(config).unwrap(),
            ServeOptions::default().with_top_k(3),
        );
        let handle = Arc::new(EngineHandle::new(engine));
        let server = HttpServer::serve(handle, "127.0.0.1:0", HttpOptions::default()).unwrap();
        (server, data)
    }

    #[test]
    fn healthz_predict_and_stats_over_one_keep_alive_connection() {
        let (server, data) = tiny_server();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let health = client.healthz().unwrap();
        assert_eq!(health.epoch, 1);

        // Probe-style query strings route to the same handler.
        let (status, _) = client.request("GET", "/healthz?probe=1", None).unwrap();
        assert_eq!(status, 200);

        let ex = &data.test.examples()[0];
        let resp = client.predict(&ex.features, None).unwrap();
        assert_eq!(resp.epoch, 1);
        assert_eq!(resp.predictions.len(), 1);
        assert!(!resp.predictions[0].classes.is_empty());
        assert!(resp.predictions[0].classes.len() <= 3);

        let batch: Vec<SparseVector> = data
            .test
            .iter()
            .take(4)
            .map(|e| e.features.clone())
            .collect();
        let resp = client.predict_batch(&batch, Some(2)).unwrap();
        assert_eq!(resp.predictions.len(), 4);
        assert!(resp.predictions.iter().all(|p| p.classes.len() <= 2));

        let stats = client.stats_json().unwrap();
        assert_eq!(stats.get("epoch").and_then(json::Json::as_u64), Some(1));
        // 3 requests so far on this connection (health, predict, batch)
        // plus this stats call in flight; the transport saw ≥ 4.
        let http_requests = stats
            .get("http")
            .and_then(|h| h.get("requests"))
            .and_then(json::Json::as_u64)
            .unwrap();
        assert!(http_requests >= 4);
        // One connection, many requests: keep-alive worked.
        let conns = stats
            .get("http")
            .and_then(|h| h.get("connections"))
            .and_then(json::Json::as_u64)
            .unwrap();
        assert_eq!(conns, 1);
        server.shutdown();
    }

    #[test]
    fn error_statuses_map_one_to_one() {
        let (server, data) = tiny_server();
        let mut client = Client::connect(server.local_addr()).unwrap();

        // Malformed JSON → 400 bad_request.
        let (status, body) = client
            .request("POST", "/v1/predict", Some("this is not json"))
            .unwrap();
        assert_eq!(status, 400);
        assert_eq!(wire::decode_error_body(&body).0, "bad_request");

        // Out-of-range feature index → 422 feature_index_out_of_range.
        let input_dim = server.handle().engine().input_dim();
        let bad = format!("{{\"indices\":[{input_dim}],\"values\":[1.0]}}");
        let (status, body) = client.request("POST", "/v1/predict", Some(&bad)).unwrap();
        assert_eq!(status, 422);
        assert_eq!(
            wire::decode_error_body(&body).0,
            "feature_index_out_of_range"
        );

        // top_k 0 → 422 invalid_top_k.
        let (status, body) = client
            .request(
                "POST",
                "/v1/predict",
                Some("{\"indices\":[0],\"values\":[1.0],\"top_k\":0}"),
            )
            .unwrap();
        assert_eq!(status, 422);
        assert_eq!(wire::decode_error_body(&body).0, "invalid_top_k");

        // Unknown route → 404; wrong method → 405.
        let (status, _) = client.request("GET", "/v2/predict", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = client.request("PUT", "/healthz", None).unwrap();
        assert_eq!(status, 405);

        // Reload pointing at a missing file → 500 model_error; the old
        // engine keeps serving.
        let (status, body) = client
            .request(
                "POST",
                "/v1/reload",
                Some("{\"path\":\"/nonexistent/model.slidesnap\"}"),
            )
            .unwrap();
        assert_eq!(status, 500);
        assert_eq!(wire::decode_error_body(&body).0, "model_error");
        let ex = &data.test.examples()[0];
        assert!(client.predict(&ex.features, None).is_ok());
        assert_eq!(server.handle().epoch(), 1);
        server.shutdown();
    }

    #[test]
    fn oversized_body_rejected_with_413() {
        let (server, _) = tiny_server();
        let handle = Arc::clone(server.handle());
        let small = HttpServer::serve(
            handle,
            "127.0.0.1:0",
            HttpOptions {
                max_body_bytes: 64,
                read_timeout: Duration::from_secs(5),
            },
        )
        .unwrap();
        let mut client = Client::connect(small.local_addr()).unwrap();
        let big = format!(
            "{{\"indices\":[0],\"values\":[1.0],\"pad\":\"{}\"}}",
            "x".repeat(256)
        );
        let (status, body) = client.request("POST", "/v1/predict", Some(&big)).unwrap();
        assert_eq!(status, 413);
        assert_eq!(wire::decode_error_body(&body).0, "payload_too_large");
        small.shutdown();
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let (server, _) = tiny_server();
        let addr = server.local_addr();
        server.shutdown();
        // The port is free again.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
