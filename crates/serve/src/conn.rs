//! Incremental HTTP/1.1 request parsing for the event-driven front-end.
//!
//! A readiness loop sees requests in whatever fragments the kernel
//! delivers — half a request line, three headers and a byte of body,
//! two pipelined requests in one read. [`RequestParser`] is the
//! push-driven state machine that consumes those fragments and emits
//! complete requests, with **exactly** the accept/reject behavior of the
//! blocking whole-request parser it replaced (`tests` pin the contract
//! table-driven, byte-by-byte and across adversarial split points):
//!
//! * request line: `METHOD PATH VERSION` (extra tokens ignored), where
//!   the version must start `HTTP/1.`; keep-alive defaults on for
//!   HTTP/1.1 and off otherwise, then follows any `Connection` header;
//! * lines are bounded by [`MAX_LINE_BYTES`] *including* the CRLF;
//! * `Content-Length` declares the body (duplicate headers: last one
//!   wins, but an over-limit declaration poisons the request into
//!   [`ParseStatus::TooLarge`] permanently); `Transfer-Encoding` is
//!   rejected — chunked bodies are out of scope for the v1 protocol;
//! * request line, headers, and body must be UTF-8.
//!
//! The parser never looks at the transport: feeding it bytes and
//! mapping an EOF to the right truncation error
//! ([`RequestParser::eof_error`]) are the connection state machine's
//! job ([`crate::http`]).

/// Longest accepted request line or header line, bytes, terminator
/// included.
pub const MAX_LINE_BYTES: usize = 8 << 10;

/// One fully parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// The request method, verbatim.
    pub method: String,
    /// The request path, verbatim (query string included).
    pub path: String,
    /// The decoded body.
    pub body: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

/// Outcome of feeding bytes to [`RequestParser::advance`].
#[derive(Debug, PartialEq, Eq)]
pub enum ParseStatus {
    /// All fed bytes consumed; the request is still incomplete.
    NeedMore,
    /// A complete request (the parser has reset for the next one —
    /// unconsumed bytes belong to a pipelined successor).
    Request(Box<ParsedRequest>),
    /// The bytes were not acceptable HTTP; answer 400 and close.
    Malformed(&'static str),
    /// The declared body exceeds the limit; answer 413 and close.
    TooLarge,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    RequestLine,
    Headers,
    Body,
}

/// Push-driven incremental parser for one connection. Emits any number
/// of requests over its lifetime; after each [`ParseStatus::Request`] it
/// is reset and ready for the next. A `Malformed`/`TooLarge` outcome is
/// terminal — the connection closes, so the parser is never fed again.
#[derive(Debug)]
pub struct RequestParser {
    max_body: usize,
    state: State,
    /// Accumulates the current line, terminator included (the line
    /// length bound counts it, exactly like the blocking reader did).
    line: Vec<u8>,
    /// Accumulates the body until `content_length` bytes arrived.
    body: Vec<u8>,
    method: String,
    path: String,
    keep_alive: bool,
    content_length: usize,
    too_large: bool,
    /// Whether any byte of the current request has been consumed —
    /// distinguishes a clean between-requests EOF from a truncation.
    started: bool,
}

impl RequestParser {
    /// A fresh parser enforcing `max_body` on declared body lengths.
    pub fn new(max_body: usize) -> Self {
        Self {
            max_body,
            state: State::RequestLine,
            line: Vec::new(),
            body: Vec::new(),
            method: String::new(),
            path: String::new(),
            keep_alive: true,
            content_length: 0,
            too_large: false,
            started: false,
        }
    }

    /// Whether the parser sits between requests (nothing consumed since
    /// the last emit). An EOF here is a clean close.
    pub fn is_idle(&self) -> bool {
        !self.started
    }

    /// The truncation error an EOF at this point maps to, or `None` for
    /// a clean between-requests close. Mirrors the blocking parser: EOF
    /// mid-line is a cut-off request, at a header boundary it is
    /// "truncated headers", inside the body "truncated body".
    pub fn eof_error(&self) -> Option<&'static str> {
        match self.state {
            State::RequestLine | State::Headers if !self.started => None,
            State::RequestLine => Some("truncated request"),
            State::Headers => {
                if self.line.is_empty() {
                    Some("truncated headers")
                } else {
                    Some("truncated request")
                }
            }
            State::Body => Some("truncated body"),
        }
    }

    /// Consumes a prefix of `input`, returning how many bytes were taken
    /// and what they produced. On [`ParseStatus::Request`] the remainder
    /// belongs to the next (pipelined) request — call again. On
    /// `NeedMore` the whole input was consumed.
    pub fn advance(&mut self, input: &[u8]) -> (usize, ParseStatus) {
        let mut consumed = 0usize;
        while consumed < input.len() {
            match self.state {
                State::RequestLine | State::Headers => {
                    let rest = &input[consumed..];
                    let upto = rest.iter().position(|&b| b == b'\n');
                    let take = upto.map_or(rest.len(), |p| p + 1);
                    self.line.extend_from_slice(&rest[..take]);
                    consumed += take;
                    self.started = true;
                    if self.line.len() > MAX_LINE_BYTES {
                        return (consumed, ParseStatus::Malformed("line too long"));
                    }
                    if upto.is_none() {
                        continue; // need the rest of the line
                    }
                    while matches!(self.line.last(), Some(b'\n' | b'\r')) {
                        self.line.pop();
                    }
                    // The buffer moves out so the line handlers can take
                    // `&mut self`, and moves back to keep its capacity.
                    let line_buf = std::mem::take(&mut self.line);
                    let status = match std::str::from_utf8(&line_buf) {
                        Err(_) => Some(ParseStatus::Malformed("non-utf8 line")),
                        Ok(line) if self.state == State::RequestLine => {
                            self.take_request_line(line)
                        }
                        Ok(line) => self.take_header_line(line),
                    };
                    self.line = line_buf;
                    self.line.clear();
                    match status {
                        Some(s) => return (consumed, s),
                        None => continue,
                    }
                }
                State::Body => {
                    let need = self.content_length - self.body.len();
                    let take = need.min(input.len() - consumed);
                    self.body
                        .extend_from_slice(&input[consumed..consumed + take]);
                    consumed += take;
                    if self.body.len() == self.content_length {
                        return (consumed, self.emit());
                    }
                }
            }
        }
        // An empty Content-Length (or none) completes at the header
        // boundary without waiting for more input.
        if self.state == State::Body && self.body.len() == self.content_length {
            return (consumed, self.emit());
        }
        (consumed, ParseStatus::NeedMore)
    }

    /// Parses the (already line-terminated, stripped) request line;
    /// `Some` is a terminal error.
    fn take_request_line(&mut self, line: &str) -> Option<ParseStatus> {
        if line.is_empty() {
            return Some(ParseStatus::Malformed("empty request line"));
        }
        let mut parts = line.split_whitespace();
        let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
        else {
            return Some(ParseStatus::Malformed("malformed request line"));
        };
        if !version.starts_with("HTTP/1.") {
            return Some(ParseStatus::Malformed("unsupported protocol version"));
        }
        self.method = method.to_string();
        self.path = path.to_string();
        self.keep_alive = version == "HTTP/1.1";
        self.state = State::Headers;
        None
    }

    /// Parses one header line (empty = end of headers); `Some` is a
    /// terminal error or a completed zero-body request.
    fn take_header_line(&mut self, line: &str) -> Option<ParseStatus> {
        if line.is_empty() {
            if self.too_large {
                return Some(ParseStatus::TooLarge);
            }
            self.state = State::Body;
            if self.content_length == 0 {
                return Some(self.emit());
            }
            return None;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Some(ParseStatus::Malformed("malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if n <= self.max_body => self.content_length = n,
                Ok(_) => self.too_large = true,
                Err(_) => return Some(ParseStatus::Malformed("bad content-length")),
            },
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    self.keep_alive = false;
                } else if v.contains("keep-alive") {
                    self.keep_alive = true;
                }
            }
            "transfer-encoding" => {
                return Some(ParseStatus::Malformed("transfer-encoding not supported"));
            }
            _ => {}
        }
        None
    }

    /// Finishes the current request and resets for the next one.
    fn emit(&mut self) -> ParseStatus {
        let Ok(body) = String::from_utf8(std::mem::take(&mut self.body)) else {
            return ParseStatus::Malformed("non-utf8 body");
        };
        let req = ParsedRequest {
            method: std::mem::take(&mut self.method),
            path: std::mem::take(&mut self.path),
            body,
            keep_alive: self.keep_alive,
        };
        self.state = State::RequestLine;
        self.keep_alive = true;
        self.content_length = 0;
        self.too_large = false;
        self.started = false;
        ParseStatus::Request(Box::new(req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// What a byte stream must parse to, regardless of how it is split.
    #[derive(Debug, PartialEq, Eq)]
    enum Want {
        /// Complete requests as `(method, path, body, keep_alive)`, plus
        /// whether the stream ends mid-request (`NeedMore` at EOF).
        Requests(Vec<(&'static str, &'static str, &'static str, bool)>, bool),
        /// A terminal parse error after zero or more good requests.
        Error(&'static str),
        /// A 413 after zero or more good requests.
        TooLarge,
    }

    const MAX_BODY: usize = 256;

    fn run(input: &[u8], splits: &[usize]) -> Want {
        let mut parser = RequestParser::new(MAX_BODY);
        let mut requests = Vec::new();
        let mut bounds: Vec<usize> = Vec::new();
        bounds.extend_from_slice(splits);
        bounds.push(input.len());
        let mut start = 0usize;
        for &end in &bounds {
            let mut chunk = &input[start..end];
            start = end;
            while !chunk.is_empty() {
                let (consumed, status) = parser.advance(chunk);
                chunk = &chunk[consumed..];
                match status {
                    ParseStatus::NeedMore => {
                        assert!(chunk.is_empty(), "NeedMore must consume the chunk");
                    }
                    ParseStatus::Request(r) => requests.push(r),
                    ParseStatus::Malformed(m) => return Want::Error(m),
                    ParseStatus::TooLarge => return Want::TooLarge,
                }
            }
            // A zero-length body can complete on an empty feed too.
            if chunk.is_empty() {
                let (consumed, status) = parser.advance(&[]);
                assert_eq!(consumed, 0);
                match status {
                    ParseStatus::NeedMore => {}
                    ParseStatus::Request(r) => requests.push(r),
                    ParseStatus::Malformed(m) => return Want::Error(m),
                    ParseStatus::TooLarge => return Want::TooLarge,
                }
            }
        }
        let mid_request = !parser.is_idle();
        Want::Requests(
            requests
                .iter()
                .map(|r| (leak(&r.method), leak(&r.path), leak(&r.body), r.keep_alive))
                .collect(),
            mid_request,
        )
    }

    fn leak(s: &str) -> &'static str {
        Box::leak(s.to_string().into_boxed_str())
    }

    /// Runs `input` through every split discipline: whole, byte-by-byte,
    /// and every single split point. All must agree with `want`.
    fn check(name: &str, input: &[u8], want: &Want) {
        assert_eq!(&run(input, &[]), want, "{name}: unsplit");
        let all_bytes: Vec<usize> = (1..input.len()).collect();
        assert_eq!(&run(input, &all_bytes), want, "{name}: byte-by-byte");
        for split in 1..input.len() {
            assert_eq!(&run(input, &[split]), want, "{name}: split at {split}");
        }
    }

    #[test]
    fn accept_reject_table_is_split_invariant() {
        let cases: Vec<(&str, Vec<u8>, Want)> = vec![
            (
                "get no body",
                b"GET /healthz HTTP/1.1\r\n\r\n".to_vec(),
                Want::Requests(vec![("GET", "/healthz", "", true)], false),
            ),
            (
                "post with body",
                b"POST /v1/predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nwork".to_vec(),
                Want::Requests(vec![("POST", "/v1/predict", "work", true)], false),
            ),
            (
                "bare lf line endings",
                b"GET /healthz HTTP/1.1\n\n".to_vec(),
                Want::Requests(vec![("GET", "/healthz", "", true)], false),
            ),
            (
                "http 1.0 defaults to close",
                b"GET / HTTP/1.0\r\n\r\n".to_vec(),
                Want::Requests(vec![("GET", "/", "", false)], false),
            ),
            (
                "http 1.0 with keep-alive header",
                b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n".to_vec(),
                Want::Requests(vec![("GET", "/", "", true)], false),
            ),
            (
                "connection close",
                b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec(),
                Want::Requests(vec![("GET", "/", "", false)], false),
            ),
            (
                "extra request-line tokens ignored",
                b"GET / HTTP/1.1 extra junk\r\n\r\n".to_vec(),
                Want::Requests(vec![("GET", "/", "", true)], false),
            ),
            (
                "duplicate content-length last wins",
                b"POST / HTTP/1.1\r\nContent-Length: 9\r\nContent-Length: 2\r\n\r\nhi".to_vec(),
                Want::Requests(vec![("POST", "/", "hi", true)], false),
            ),
            (
                "pipelined pair",
                b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz".to_vec(),
                Want::Requests(
                    vec![("GET", "/a", "", true), ("POST", "/b", "xyz", true)],
                    false,
                ),
            ),
            (
                "pipelined with trailing partial",
                b"GET /a HTTP/1.1\r\n\r\nGET /b HT".to_vec(),
                Want::Requests(vec![("GET", "/a", "", true)], true),
            ),
            (
                "empty request line",
                b"\r\nGET / HTTP/1.1\r\n\r\n".to_vec(),
                Want::Error("empty request line"),
            ),
            (
                "missing version",
                b"GET /\r\n\r\n".to_vec(),
                Want::Error("malformed request line"),
            ),
            (
                "http 2 rejected",
                b"GET / HTTP/2\r\n\r\n".to_vec(),
                Want::Error("unsupported protocol version"),
            ),
            (
                "header without colon",
                b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
                Want::Error("malformed header"),
            ),
            (
                "unparseable content-length",
                b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n".to_vec(),
                Want::Error("bad content-length"),
            ),
            (
                "negative content-length",
                b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n".to_vec(),
                Want::Error("bad content-length"),
            ),
            (
                "chunked rejected",
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
                Want::Error("transfer-encoding not supported"),
            ),
            (
                "non-utf8 request line",
                b"GET /\xff HTTP/1.1\r\n\r\n".to_vec(),
                Want::Error("non-utf8 line"),
            ),
            (
                "non-utf8 body",
                b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n\xc3\x28".to_vec(),
                Want::Error("non-utf8 body"),
            ),
            (
                "oversized declared body",
                format!(
                    "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY + 1
                )
                .into_bytes(),
                Want::TooLarge,
            ),
            (
                "oversized then small declaration still 413",
                format!(
                    "POST / HTTP/1.1\r\nContent-Length: {}\r\nContent-Length: 2\r\n\r\nhi",
                    MAX_BODY + 1
                )
                .into_bytes(),
                Want::TooLarge,
            ),
            (
                "good request then garbage",
                b"GET /a HTTP/1.1\r\n\r\n\r\n".to_vec(),
                Want::Error("empty request line"),
            ),
        ];
        for (name, input, want) in &cases {
            check(name, input, want);
        }
    }

    #[test]
    fn oversized_line_rejected_at_the_bound() {
        // A line of exactly MAX_LINE_BYTES including CRLF passes; one
        // byte more fails — split-invariantly.
        let pad = "x".repeat(MAX_LINE_BYTES - "GET /p HTTP/1.1\r\n".len());
        let ok = format!("GET /p{pad} HTTP/1.1\r\n\r\n");
        let p = &ok[..]; // sanity: line is exactly at the bound
        assert_eq!(p.find("\r\n").unwrap() + 2, MAX_LINE_BYTES);
        let long_path = leak_string(format!("/p{pad}"));
        check(
            "line at the bound",
            ok.as_bytes(),
            &Want::Requests(vec![("GET", long_path, "", true)], false),
        );

        let over = format!("GET /px{pad} HTTP/1.1\r\n\r\n");
        // Too expensive to try every split of an 8 KiB line: the
        // interesting splits are around the bound.
        let mut parser = RequestParser::new(MAX_BODY);
        let (_, status) = parser.advance(over.as_bytes());
        assert_eq!(status, ParseStatus::Malformed("line too long"));
        let mut parser = RequestParser::new(MAX_BODY);
        let bytes = over.as_bytes();
        let mut outcome = None;
        for b in bytes {
            match parser.advance(std::slice::from_ref(b)) {
                (_, ParseStatus::NeedMore) => {}
                (_, s) => {
                    outcome = Some(s);
                    break;
                }
            }
        }
        assert_eq!(outcome, Some(ParseStatus::Malformed("line too long")));

        // An unterminated line keeps erroring once past the bound even
        // with no newline in sight (slow-loris cannot buffer forever).
        let mut parser = RequestParser::new(MAX_BODY);
        let (_, status) = parser.advance(&vec![b'a'; MAX_LINE_BYTES + 1]);
        assert_eq!(status, ParseStatus::Malformed("line too long"));
    }

    fn leak_string(s: String) -> &'static str {
        Box::leak(s.into_boxed_str())
    }

    #[test]
    fn eof_maps_to_the_blocking_parsers_truncation_errors() {
        let cases: Vec<(&str, &[u8], Option<&'static str>)> = vec![
            ("between requests", b"", None),
            ("after a full request", b"GET / HTTP/1.1\r\n\r\n", None),
            ("mid request line", b"GET /he", Some("truncated request")),
            (
                "after request line",
                b"GET / HTTP/1.1\r\n",
                Some("truncated headers"),
            ),
            (
                "mid header line",
                b"GET / HTTP/1.1\r\nHost: s",
                Some("truncated request"),
            ),
            (
                "mid body",
                b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
                Some("truncated body"),
            ),
        ];
        for (name, input, want) in cases {
            let mut parser = RequestParser::new(MAX_BODY);
            let mut rest = input;
            while !rest.is_empty() {
                let (consumed, status) = parser.advance(rest);
                rest = &rest[consumed..];
                match status {
                    ParseStatus::NeedMore | ParseStatus::Request(_) => {}
                    other => panic!("{name}: unexpected {other:?}"),
                }
            }
            assert_eq!(parser.eof_error(), want, "{name}");
        }
    }

    #[test]
    fn parser_reuses_cleanly_across_many_requests() {
        let mut parser = RequestParser::new(MAX_BODY);
        for i in 0..100 {
            let body = format!("req-{i}");
            let raw = format!(
                "POST /v1/predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            let (consumed, status) = parser.advance(raw.as_bytes());
            assert_eq!(consumed, raw.len());
            match status {
                ParseStatus::Request(r) => {
                    assert_eq!(r.body, body);
                    assert!(r.keep_alive);
                }
                other => panic!("request {i}: {other:?}"),
            }
            assert!(parser.is_idle());
        }
    }
}
