//! Scatter-gather routing over sharded serving back-ends.
//!
//! A large output layer can be *sliced* into contiguous neuron ranges
//! ([`slide_core::snapshot::slice_snapshot`]), each range served by its
//! own [`crate::ServingEngine`] behind its own [`crate::http::HttpServer`]
//! — each shard scores only its own rows and answers with globally
//! offset class ids. The [`Router`] is the thin front door that makes
//! the fleet look like one box: every `POST /v1/predict` fans out to
//! all shards over keep-alive connections, the per-shard top-k lists
//! merge through the same [`TopK`] reduction the engine uses (so
//! tie-breaking matches to the bit), and the merged answer equals the
//! single full engine's — classes *and* score bits.
//!
//! Failure policy is all-or-nothing: a partial merge would silently
//! drop one shard's classes, so an unreachable (or 5xx) shard turns the
//! whole request into a typed `503 shard_unavailable`, and a shard
//! slower than [`RouterOptions::merge_timeout`] into `504
//! merge_timeout`. A shard's own `4xx` (bad request, invalid `top_k`)
//! is relayed verbatim — shard engines validate against the *full*
//! model's class count, so their rejections read exactly like a single
//! box's.
//!
//! Endpoints mirror the single-box server's: `POST /v1/predict`,
//! `GET /healthz` (min epoch over reachable shards), `GET /readyz`
//! (ready only when *every* shard is), `GET /v1/stats` (router-role
//! counters). [`crate::client::Client`] speaks to a router unchanged.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use slide_core::TopK;

use crate::client::{Client, ClientError};
use crate::engine::ServeOptions;
use crate::error::ServeError;
use crate::http::reason;
use crate::wire::{self, PredictResponse, WirePrediction};

/// Tuning for a [`Router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterOptions {
    /// Classes per merged answer when the request carries no `top_k`.
    /// Must match the shard engines' [`ServeOptions::top_k`] for merged
    /// defaults to equal a single box's.
    pub top_k: usize,
    /// Deadline for any single shard's answer within one fan-out.
    /// Scatter is parallel, so the slowest shard bounds the merge; past
    /// this the request fails typed `504 merge_timeout`.
    pub merge_timeout: Duration,
    /// Idle keep-alive window per client connection before the router
    /// closes it.
    pub idle_timeout: Duration,
    /// Largest accepted request body, bytes (`413` past it).
    pub max_body_bytes: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        Self {
            top_k: ServeOptions::default().top_k,
            merge_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            max_body_bytes: 4 << 20,
        }
    }
}

impl RouterOptions {
    /// Sets the default merged `top_k` (builder style).
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Sets the per-shard merge deadline (builder style).
    pub fn with_merge_timeout(mut self, timeout: Duration) -> Self {
        self.merge_timeout = timeout;
        self
    }

    /// Sets the idle keep-alive window (builder style).
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }
}

/// Monotonic counters a router exports through `GET /v1/stats`.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    merged: AtomicU64,
    shard_errors: AtomicU64,
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
}

/// A point-in-time copy of a router's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterStats {
    /// Requests accepted (any endpoint).
    pub requests: u64,
    /// `POST /v1/predict` fan-outs that merged successfully.
    pub merged: u64,
    /// Shard round-trips that failed (transport, timeout, or 5xx).
    pub shard_errors: u64,
    /// Responses by status class.
    pub responses_2xx: u64,
    /// 4xx responses (router-typed or relayed from a shard).
    pub responses_4xx: u64,
    /// 5xx responses (including `503 shard_unavailable` and
    /// `504 merge_timeout`).
    pub responses_5xx: u64,
}

struct Shared {
    shards: Vec<SocketAddr>,
    options: RouterOptions,
    shutdown: AtomicBool,
    counters: Counters,
}

/// The scatter-gather front door over a fleet of shard servers.
///
/// Accepts on a bound address, one blocking handler thread per client
/// connection; each handler keeps its own pool of keep-alive shard
/// connections, so a busy client re-uses warm sockets end to end.
pub struct Router {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shared.shards)
            .finish()
    }
}

impl Router {
    /// Binds `addr` and serves scatter-gather over `shards` until
    /// [`Router::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the bind error, or `InvalidInput` for an empty shard
    /// list (a router with nothing behind it could never answer).
    pub fn serve<A: ToSocketAddrs>(
        addr: A,
        shards: Vec<SocketAddr>,
        options: RouterOptions,
    ) -> std::io::Result<Self> {
        if shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one shard",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shards,
            options,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("slide-router-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(Self {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shard back-ends this router fans over.
    pub fn shards(&self) -> &[SocketAddr] {
        &self.shared.shards
    }

    /// A snapshot of the router's counters.
    pub fn stats(&self) -> RouterStats {
        let c = &self.shared.counters;
        RouterStats {
            requests: c.requests.load(Ordering::Relaxed),
            merged: c.merged.load(Ordering::Relaxed),
            shard_errors: c.shard_errors.load(Ordering::Relaxed),
            responses_2xx: c.responses_2xx.load(Ordering::Relaxed),
            responses_4xx: c.responses_4xx.load(Ordering::Relaxed),
            responses_5xx: c.responses_5xx.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and joins the accept thread. Handler threads for
    /// already-open connections finish their in-flight request and exit
    /// when the client disconnects or the idle window lapses.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept() with a throwaway dial.
        TcpStream::connect(self.local_addr).ok();
        if let Some(t) = self.accept_thread.take() {
            t.join().ok();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name("slide-router-conn".into())
            .spawn(move || handle_connection(stream, &conn_shared))
            .ok();
    }
}

// ---------------------------------------------------------------------
// Per-connection request loop.

struct ParsedReq {
    method: String,
    path: String,
    body: String,
    keep_alive: bool,
}

enum ReadOutcome {
    /// Clean close, garbage head, or idle timeout: drop the connection.
    Closed,
    /// A parsed request.
    Req(ParsedReq),
    /// Head declared a body past the limit.
    TooLarge,
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(shared.options.idle_timeout))
        .ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // Lazily dialed, per-connection keep-alive shard clients: slot `i`
    // talks to shard `i` and survives across this connection's requests.
    let mut clients: Vec<Option<Client>> = shared.shards.iter().map(|_| None).collect();
    loop {
        match read_request(&mut reader, shared.options.max_body_bytes) {
            ReadOutcome::Closed => return,
            ReadOutcome::TooLarge => {
                let e = ServeError::PayloadTooLarge {
                    limit: shared.options.max_body_bytes,
                };
                respond(
                    shared,
                    &mut writer,
                    e.http_status(),
                    &wire::encode_error_body(&e),
                    false,
                );
                return;
            }
            ReadOutcome::Req(req) => {
                let keep_alive = req.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
                let (status, body) = dispatch(shared, &mut clients, &req);
                if !respond(shared, &mut writer, status, &body, keep_alive) || !keep_alive {
                    return;
                }
            }
        }
    }
}

fn read_request(reader: &mut BufReader<TcpStream>, max_body: usize) -> ReadOutcome {
    let Some(request_line) = read_line(reader) else {
        return ReadOutcome::Closed;
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ReadOutcome::Closed;
    };
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Closed;
    }
    let mut content_length = 0usize;
    let mut keep_alive = true;
    loop {
        let Some(header) = read_line(reader) else {
            return ReadOutcome::Closed;
        };
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return ReadOutcome::Closed;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let Ok(n) = value.parse::<usize>() else {
                    return ReadOutcome::Closed;
                };
                content_length = n;
            }
            "connection" if value.eq_ignore_ascii_case("close") => keep_alive = false,
            _ => {}
        }
    }
    if content_length > max_body {
        return ReadOutcome::TooLarge;
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return ReadOutcome::Closed;
    }
    let Ok(body) = String::from_utf8(body) else {
        return ReadOutcome::Closed;
    };
    ReadOutcome::Req(ParsedReq {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    })
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Option<String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) | Err(_) => None,
        Ok(_) => {
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Some(line)
        }
    }
}

/// Writes one response; `false` means the socket broke.
fn respond(
    shared: &Shared,
    writer: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> bool {
    match status / 100 {
        2 => &shared.counters.responses_2xx,
        4 => &shared.counters.responses_4xx,
        _ => &shared.counters.responses_5xx,
    }
    .fetch_add(1, Ordering::Relaxed);
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    writer.write_all(head.as_bytes()).is_ok()
        && writer.write_all(body.as_bytes()).is_ok()
        && writer.flush().is_ok()
}

// ---------------------------------------------------------------------
// Routing.

fn dispatch(shared: &Shared, clients: &mut [Option<Client>], req: &ParsedReq) -> (u16, String) {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("POST", "/v1/predict") => predict(shared, clients, &req.body),
        ("GET", "/healthz") => healthz(shared, clients),
        ("GET", "/readyz") => readyz(shared, clients),
        ("GET", "/v1/stats") => (200, stats_body(shared)),
        (_, "/healthz" | "/readyz" | "/v1/stats" | "/v1/predict") => error_response(
            shared,
            &ServeError::MethodNotAllowed {
                method: req.method.clone(),
                path: req.path.clone(),
            },
        ),
        _ => error_response(
            shared,
            &ServeError::UnknownRoute {
                path: req.path.clone(),
            },
        ),
    }
}

fn error_response(shared: &Shared, e: &ServeError) -> (u16, String) {
    if matches!(
        e,
        ServeError::ShardUnavailable { .. } | ServeError::MergeTimeout
    ) {
        shared.counters.shard_errors.fetch_add(1, Ordering::Relaxed);
    }
    (e.http_status(), wire::encode_error_body(e))
}

// ---------------------------------------------------------------------
// Shard fan-out.

enum ShardReply {
    Answer(u16, String),
    TimedOut,
    Unreachable,
}

/// One blocking shard round-trip through this connection's keep-alive
/// slot, dialing on first use (and re-dialing after a transport error,
/// which `Client` surfaces by dropping its broken connection).
fn shard_roundtrip(
    slot: &mut Option<Client>,
    addr: SocketAddr,
    timeout: Duration,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> ShardReply {
    if slot.is_none() {
        match Client::connect(addr) {
            Ok(c) => *slot = Some(c.with_read_timeout(timeout)),
            Err(_) => return ShardReply::Unreachable,
        }
    }
    let Some(client) = slot.as_mut() else {
        return ShardReply::Unreachable;
    };
    match client.request(method, path, body) {
        Ok((status, body)) => ShardReply::Answer(status, body),
        Err(ClientError::Io(e))
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            // The connection's read stream is now mid-response garbage;
            // force a fresh dial next time.
            *slot = None;
            ShardReply::TimedOut
        }
        Err(_) => {
            *slot = None;
            ShardReply::Unreachable
        }
    }
}

/// Fans one request over every shard in parallel (one scoped thread per
/// shard, each through its own keep-alive slot) and collects the
/// replies in shard order.
fn scatter(
    shared: &Shared,
    clients: &mut [Option<Client>],
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Vec<ShardReply> {
    let timeout = shared.options.merge_timeout;
    std::thread::scope(|s| {
        let handles: Vec<_> = clients
            .iter_mut()
            .zip(&shared.shards)
            .map(|(slot, &addr)| {
                s.spawn(move || shard_roundtrip(slot, addr, timeout, method, path, body))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or(ShardReply::Unreachable))
            .collect()
    })
}

// ---------------------------------------------------------------------
// Endpoints.

fn predict(shared: &Shared, clients: &mut [Option<Client>], body: &str) -> (u16, String) {
    // Decode locally first so malformed bodies die here with the same
    // typed 400 a single box gives, without burning a fan-out.
    let req = match wire::decode_predict_request(body) {
        Ok(r) => r,
        Err(e) => return error_response(shared, &e),
    };
    let replies = scatter(shared, clients, "POST", "/v1/predict", Some(body));
    // All-or-nothing gather: relay a shard's own 4xx verbatim (its
    // validation is the full model's), refuse to merge around any
    // missing or failed shard.
    let mut bodies: Vec<&str> = Vec::with_capacity(replies.len());
    for (i, reply) in replies.iter().enumerate() {
        match reply {
            ShardReply::Answer(status, shard_body) => {
                if (400..500).contains(status) {
                    return (*status, shard_body.clone());
                }
                if !(200..300).contains(status) {
                    return error_response(shared, &ServeError::ShardUnavailable { shard: i });
                }
                bodies.push(shard_body);
            }
            ShardReply::TimedOut => return error_response(shared, &ServeError::MergeTimeout),
            ShardReply::Unreachable => {
                return error_response(shared, &ServeError::ShardUnavailable { shard: i })
            }
        }
    }
    let mut shard_resps: Vec<PredictResponse> = Vec::with_capacity(bodies.len());
    for (i, b) in bodies.iter().enumerate() {
        match wire::decode_predict_response(b) {
            Ok(r) if r.predictions.len() == req.inputs.len() => shard_resps.push(r),
            // A 2xx that does not parse (or answers the wrong batch
            // size) is a broken shard, not a client error.
            _ => return error_response(shared, &ServeError::ShardUnavailable { shard: i }),
        }
    }
    // Every shard accepted the request, so `k` passed the full-width
    // validation and bounds this preallocation.
    let k = req.top_k.unwrap_or(shared.options.top_k);
    let mut epoch = u64::MAX;
    let mut merged: Vec<TopK> = req.inputs.iter().map(|_| TopK::new(k)).collect();
    let mut latencies = vec![0u64; req.inputs.len()];
    for resp in &shard_resps {
        epoch = epoch.min(resp.epoch);
        for (j, p) in resp.predictions.iter().enumerate() {
            for (&class, &score) in p.classes.iter().zip(&p.scores) {
                merged[j].offer(class, score);
            }
            // The fan-out's critical path is its slowest shard.
            latencies[j] = latencies[j].max(p.latency_us);
        }
    }
    let predictions = merged
        .iter_mut()
        .zip(&latencies)
        .map(|(t, &latency_us)| {
            t.finish();
            let items = t.items();
            WirePrediction {
                classes: items.iter().map(|&(c, _)| c).collect(),
                scores: items.iter().map(|&(_, s)| s).collect(),
                latency_us,
            }
        })
        .collect();
    shared.counters.merged.fetch_add(1, Ordering::Relaxed);
    let resp = PredictResponse { epoch, predictions };
    (200, wire::encode_predict_response(&resp))
}

fn healthz(shared: &Shared, clients: &mut [Option<Client>]) -> (u16, String) {
    // Liveness: the router itself answers as long as it runs; the epoch
    // reported is the fleet's trailing edge (the smallest epoch any
    // reachable shard serves), 0 when no shard is reachable.
    let replies = scatter(shared, clients, "GET", "/healthz", None);
    let mut epoch: Option<u64> = None;
    for reply in &replies {
        if let ShardReply::Answer(status, body) = reply {
            if (200..300).contains(status) {
                if let Ok(v) = crate::json::parse(body) {
                    if let Some(e) = v.get("epoch").and_then(crate::json::Json::as_u64) {
                        epoch = Some(epoch.map_or(e, |cur| cur.min(e)));
                    }
                }
            }
        }
    }
    let body = format!(
        "{{\"api_version\":{},\"status\":\"ok\",\"epoch\":{}}}",
        wire::API_VERSION,
        epoch.unwrap_or(0)
    );
    (200, body)
}

fn readyz(shared: &Shared, clients: &mut [Option<Client>]) -> (u16, String) {
    // Readiness is strict: a merged answer needs EVERY shard, so one
    // not-ready (or unreachable) shard makes the whole router not
    // ready, typed with the shard index so operators know where to
    // look.
    let replies = scatter(shared, clients, "GET", "/readyz", None);
    for (i, reply) in replies.iter().enumerate() {
        let ready = matches!(reply, ShardReply::Answer(status, _) if (200..300).contains(status));
        if !ready {
            return error_response(shared, &ServeError::ShardUnavailable { shard: i });
        }
    }
    let body = format!(
        "{{\"api_version\":{},\"ready\":true,\"shards\":{}}}",
        wire::API_VERSION,
        shared.shards.len()
    );
    (200, body)
}

fn stats_body(shared: &Shared) -> String {
    let c = &shared.counters;
    format!(
        "{{\"api_version\":{},\"role\":\"router\",\"shards\":{},\"requests\":{},\
         \"merged\":{},\"shard_errors\":{},\"responses_2xx\":{},\"responses_4xx\":{},\
         \"responses_5xx\":{}}}",
        wire::API_VERSION,
        shared.shards.len(),
        c.requests.load(Ordering::Relaxed),
        c.merged.load(Ordering::Relaxed),
        c.shard_errors.load(Ordering::Relaxed),
        c.responses_2xx.load(Ordering::Relaxed),
        c.responses_4xx.load(Ordering::Relaxed),
        c.responses_5xx.load(Ordering::Relaxed),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use slide_core::config::{LshLayerConfig, NetworkConfig};
    use slide_core::Network;
    use slide_data::synth::{generate, SyntheticConfig, SyntheticData};

    use crate::http::{HttpOptions, HttpServer};
    use crate::{EngineHandle, ServingEngine};

    fn tiny_snapshot() -> (Vec<u8>, SyntheticData) {
        let data = generate(&SyntheticConfig::tiny().with_seed(4));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(5)
            .build()
            .unwrap();
        let network = Network::new(config).unwrap();
        (network.to_snapshot_bytes(), data)
    }

    fn shard_opts() -> ServeOptions {
        ServeOptions::default()
            .with_top_k(3)
            .with_dense_fallback(false)
    }

    /// Slices `bytes` `n` ways and brings up one HttpServer per shard
    /// plus a router over them.
    fn cluster(bytes: &[u8], n: usize) -> (Vec<HttpServer>, Router) {
        let slices = slide_core::snapshot::slice_snapshot(bytes, n).unwrap();
        let mut servers = Vec::new();
        let mut addrs = Vec::new();
        for s in &slices {
            let engine = ServingEngine::from_slice_bytes(s, shard_opts()).unwrap();
            let handle = Arc::new(EngineHandle::new(engine));
            let server = HttpServer::serve(handle, "127.0.0.1:0", HttpOptions::default()).unwrap();
            addrs.push(server.local_addr());
            servers.push(server);
        }
        let router =
            Router::serve("127.0.0.1:0", addrs, RouterOptions::default().with_top_k(3)).unwrap();
        (servers, router)
    }

    #[test]
    fn merged_answers_equal_the_single_box_bit_for_bit() {
        let (bytes, data) = tiny_snapshot();
        let single = ServingEngine::from_snapshot_bytes(&bytes, shard_opts()).unwrap();
        for n in [1usize, 3] {
            let (servers, router) = cluster(&bytes, n);
            let mut client = Client::connect(router.local_addr()).unwrap();
            for ex in data.test.iter().take(12) {
                let want = single.predict(&ex.features).unwrap();
                let got = client.predict(&ex.features, None).unwrap();
                assert_eq!(got.predictions.len(), 1);
                let p = &got.predictions[0];
                let want_items = want.topk.items();
                assert_eq!(
                    p.classes,
                    want_items.iter().map(|&(c, _)| c).collect::<Vec<_>>()
                );
                let want_bits: Vec<u32> = want_items.iter().map(|&(_, s)| s.to_bits()).collect();
                let got_bits: Vec<u32> = p.scores.iter().map(|s| s.to_bits()).collect();
                assert_eq!(
                    got_bits, want_bits,
                    "scores must survive the wire bit-exactly"
                );
            }
            assert!(router.stats().merged >= 12);
            drop(client);
            router.shutdown();
            for s in servers {
                s.shutdown();
            }
        }
    }

    #[test]
    fn router_endpoints_and_typed_errors() {
        let (bytes, data) = tiny_snapshot();
        let (servers, router) = cluster(&bytes, 2);
        let mut client = Client::connect(router.local_addr()).unwrap();
        // healthz / readyz / stats all answer.
        assert_eq!(client.healthz().unwrap().epoch, 1);
        assert!(client.readyz().unwrap());
        let stats = client.stats_json().unwrap();
        assert_eq!(
            stats.get("role").and_then(crate::json::Json::as_str),
            Some("router")
        );
        assert_eq!(
            stats.get("shards").and_then(crate::json::Json::as_u64),
            Some(2)
        );
        // A shard's 4xx relays verbatim: k too large for the FULL model.
        let total = data.train.label_dim();
        match client.predict(&data.test.examples()[0].features, Some(total + 1)) {
            Err(ClientError::Api { status, code, .. }) => {
                assert_eq!(status, 422);
                assert_eq!(code, "invalid_top_k");
            }
            other => panic!("expected relayed 422, got {other:?}"),
        }
        // Malformed body dies at the router with the typed 400.
        let (status, body) = client
            .request("POST", "/v1/predict", Some("{\"nope\":1}"))
            .unwrap();
        assert_eq!(status, 400);
        assert_eq!(wire::decode_error_body(&body).0, "bad_request");
        // Unknown route and wrong method.
        let (status, _) = client.request("GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, body) = client.request("DELETE", "/v1/predict", None).unwrap();
        assert_eq!(status, 405);
        assert_eq!(wire::decode_error_body(&body).0, "method_not_allowed");
        drop(client);
        router.shutdown();
        for s in servers {
            s.shutdown();
        }
    }

    #[test]
    fn dead_shard_turns_predict_into_shard_unavailable() {
        let (bytes, data) = tiny_snapshot();
        let (mut servers, router) = cluster(&bytes, 2);
        // Kill shard 1; its address now refuses connections.
        servers.remove(1).shutdown();
        let mut client = Client::connect(router.local_addr()).unwrap();
        match client.predict(&data.test.examples()[0].features, None) {
            Err(ClientError::Api { status, code, .. }) => {
                assert_eq!(status, 503);
                assert_eq!(code, "shard_unavailable");
            }
            other => panic!("expected 503 shard_unavailable, got {other:?}"),
        }
        // readyz reflects the outage; healthz stays alive.
        assert!(!client.readyz().unwrap());
        assert_eq!(client.healthz().unwrap().epoch, 1);
        assert!(router.stats().shard_errors >= 1);
        drop(client);
        router.shutdown();
        for s in servers {
            s.shutdown();
        }
    }
}
