//! The serving layer's typed error hierarchy.
//!
//! Every fallible path in `slide-serve` — snapshot loads and reloads,
//! request validation, malformed wire payloads, a dead worker pool —
//! returns a [`ServeError`], and each variant maps onto exactly one HTTP
//! status ([`ServeError::http_status`]) and one stable machine-readable
//! code ([`ServeError::code`]). The HTTP front-end is therefore a pure
//! transport: it never invents status codes, it just forwards the
//! error's own mapping.

use std::fmt;

use slide_core::snapshot::SnapshotError;
use slide_core::{ConfigError, SlideError};

/// Error answering, validating, or (re)loading behind a serving request.
#[derive(Debug)]
pub enum ServeError {
    /// A `slide-core` failure: the snapshot could not be read or its
    /// embedded config is invalid. Server-side model state, not the
    /// client's fault → HTTP 500.
    Core(SlideError),
    /// The request body was not parseable as the versioned wire format
    /// (malformed JSON, missing field, wrong type) → HTTP 400.
    BadRequest {
        /// What failed to parse.
        message: String,
    },
    /// A request's feature index does not fit the model's input
    /// dimension → HTTP 422.
    FeatureIndexOutOfRange {
        /// Smallest dimension that would admit the request
        /// (`max index + 1`).
        needed_dim: usize,
        /// The model's actual input dimension.
        input_dim: usize,
    },
    /// The requested `top_k` was zero or larger than the model's output
    /// dimension → HTTP 422. The upper bound is a hard cap: `TopK`
    /// preallocates `k` slots, so an unbounded wire-supplied `k` would
    /// let one request demand an arbitrary allocation.
    InvalidTopK {
        /// The `top_k` requested.
        k: usize,
        /// The largest accepted value (the model's output dimension).
        max: usize,
    },
    /// No route at this path → HTTP 404.
    UnknownRoute {
        /// The path requested.
        path: String,
    },
    /// The route exists but not under this method → HTTP 405.
    MethodNotAllowed {
        /// The method used.
        method: String,
        /// The path requested.
        path: String,
    },
    /// The request body exceeded the configured size limit → HTTP 413.
    PayloadTooLarge {
        /// The configured limit, bytes.
        limit: usize,
    },
    /// The bounded admission queue is full → HTTP 429 with a
    /// `Retry-After` header. Backpressure, not failure: the request was
    /// rejected before any compute and is safe to replay after the
    /// advertised delay.
    Overloaded {
        /// How long the client should wait before retrying, seconds
        /// (what the `Retry-After` header carries).
        retry_after_secs: u64,
    },
    /// The worker pool shut down (or a worker died) before answering →
    /// HTTP 503.
    ServerShutdown,
    /// A worker thread panicked while computing this request's batch →
    /// HTTP 500. Every job caught in the panicked drain gets this typed
    /// answer instead of a hung reply channel, and the supervisor
    /// respawns the worker, so the request is safe to retry immediately.
    WorkerPanicked,
    /// A scatter-gather router could not reach (or got a server-side
    /// failure from) one of its shard back-ends → HTTP 503. A partial
    /// merge would silently drop that shard's classes, so the router
    /// refuses to answer; the request is safe to replay once the shard
    /// is back (`GET /readyz` on the router tracks that).
    ShardUnavailable {
        /// Zero-based index of the unreachable shard in the router's
        /// configured back-end list.
        shard: usize,
    },
    /// The scatter-gather merge deadline elapsed before every shard
    /// answered → HTTP 504. The slowest shard bounds the merged answer;
    /// the router gives up rather than hold the client past the
    /// configured `merge_timeout`.
    MergeTimeout,
}

impl ServeError {
    /// The HTTP status this error maps onto — a total, 1:1 mapping; the
    /// front-end never chooses a status itself.
    pub fn http_status(&self) -> u16 {
        match self {
            ServeError::Core(_) => 500,
            ServeError::BadRequest { .. } => 400,
            ServeError::FeatureIndexOutOfRange { .. } | ServeError::InvalidTopK { .. } => 422,
            ServeError::UnknownRoute { .. } => 404,
            ServeError::MethodNotAllowed { .. } => 405,
            ServeError::PayloadTooLarge { .. } => 413,
            ServeError::Overloaded { .. } => 429,
            ServeError::ServerShutdown => 503,
            ServeError::WorkerPanicked => 500,
            ServeError::ShardUnavailable { .. } => 503,
            ServeError::MergeTimeout => 504,
        }
    }

    /// Stable machine-readable error code for the wire `ErrorBody`.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Core(_) => "model_error",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::FeatureIndexOutOfRange { .. } => "feature_index_out_of_range",
            ServeError::InvalidTopK { .. } => "invalid_top_k",
            ServeError::UnknownRoute { .. } => "not_found",
            ServeError::MethodNotAllowed { .. } => "method_not_allowed",
            ServeError::PayloadTooLarge { .. } => "payload_too_large",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ServerShutdown => "server_shutdown",
            ServeError::WorkerPanicked => "worker_panicked",
            ServeError::ShardUnavailable { .. } => "shard_unavailable",
            ServeError::MergeTimeout => "merge_timeout",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "model error: {e}"),
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::FeatureIndexOutOfRange {
                needed_dim,
                input_dim,
            } => write!(
                f,
                "feature index out of range: request needs dim {needed_dim}, \
                 model input_dim is {input_dim}"
            ),
            ServeError::InvalidTopK { k, max } => {
                write!(f, "top_k must be positive and at most {max} (got {k})")
            }
            ServeError::UnknownRoute { path } => write!(f, "no route at {path}"),
            ServeError::MethodNotAllowed { method, path } => {
                write!(f, "method {method} not allowed at {path}")
            }
            ServeError::PayloadTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
            ServeError::Overloaded { retry_after_secs } => {
                write!(f, "admission queue full; retry after {retry_after_secs}s")
            }
            ServeError::ServerShutdown => write!(f, "server shut down before answering"),
            ServeError::WorkerPanicked => {
                write!(f, "worker panicked while answering; the pool respawned it")
            }
            ServeError::ShardUnavailable { shard } => {
                write!(
                    f,
                    "shard {shard} unavailable; merged answer would be partial"
                )
            }
            ServeError::MergeTimeout => {
                write!(f, "merge deadline elapsed before every shard answered")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SlideError> for ServeError {
    fn from(e: SlideError) -> Self {
        ServeError::Core(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Core(SlideError::Snapshot(e))
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Core(SlideError::Config(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_and_codes_are_one_to_one() {
        let cases: Vec<(ServeError, u16, &str)> = vec![
            (
                ServeError::Core(SlideError::Snapshot(SnapshotError::BadMagic)),
                500,
                "model_error",
            ),
            (
                ServeError::BadRequest {
                    message: "not json".into(),
                },
                400,
                "bad_request",
            ),
            (
                ServeError::FeatureIndexOutOfRange {
                    needed_dim: 10,
                    input_dim: 4,
                },
                422,
                "feature_index_out_of_range",
            ),
            (
                ServeError::InvalidTopK { k: 0, max: 10 },
                422,
                "invalid_top_k",
            ),
            (
                ServeError::UnknownRoute {
                    path: "/nope".into(),
                },
                404,
                "not_found",
            ),
            (
                ServeError::MethodNotAllowed {
                    method: "PUT".into(),
                    path: "/healthz".into(),
                },
                405,
                "method_not_allowed",
            ),
            (
                ServeError::PayloadTooLarge { limit: 1024 },
                413,
                "payload_too_large",
            ),
            (
                ServeError::Overloaded {
                    retry_after_secs: 1,
                },
                429,
                "overloaded",
            ),
            (ServeError::ServerShutdown, 503, "server_shutdown"),
            (ServeError::WorkerPanicked, 500, "worker_panicked"),
            (
                ServeError::ShardUnavailable { shard: 2 },
                503,
                "shard_unavailable",
            ),
            (ServeError::MergeTimeout, 504, "merge_timeout"),
        ];
        for (e, status, code) in cases {
            assert_eq!(e.http_status(), status, "{e}");
            assert_eq!(e.code(), code, "{e}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_from_core_errors() {
        let e: ServeError = SnapshotError::UnsupportedVersion(9).into();
        assert_eq!(e.http_status(), 500);
        let e: ServeError = ConfigError::NoLayers.into();
        assert_eq!(e.code(), "model_error");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
