//! Epoch-counted engine swapping — zero-downtime snapshot hot-reload.
//!
//! An [`EngineHandle`] sits between the network front-end and the
//! [`ServingEngine`]: request paths grab the current `Arc<ServingEngine>`
//! (plus the epoch that built it) and keep using it for however long
//! their request takes, while a reload builds the *next* engine entirely
//! off to the side and then swaps the shared pointer in one short write
//! — no request ever observes a half-loaded model, and in-flight
//! requests finish on the epoch they started with. The old engine is
//! freed when the last in-flight holder drops its `Arc`.
//!
//! Reloads come from two places: an explicit call (the HTTP front-end's
//! `POST /v1/reload`) and the optional [`SnapshotWatcher`] poll loop
//! that watches a snapshot file's metadata and reloads when it changes —
//! the "retrain somewhere, copy the file over, the server picks it up"
//! deployment story.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, SystemTime};

use crate::engine::{ServeOptions, ServingEngine};
use crate::error::ServeError;

struct Current {
    engine: Arc<ServingEngine>,
    epoch: u64,
}

/// Hot-swappable handle to the live [`ServingEngine`].
///
/// Cheap to read (one `RwLock` read acquisition returning a cloned
/// `Arc`), rare to write (a reload). The epoch starts at 1 and
/// increments on every successful swap; it is the version the HTTP
/// layer reports in every response so a client can tell which model
/// answered.
pub struct EngineHandle {
    current: RwLock<Current>,
    /// Mirror of the epoch inside the lock, for lock-free reads on the
    /// health path.
    epoch: AtomicU64,
    /// Options every reload rebuilds the engine with.
    options: ServeOptions,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
    /// The epoch installed by the most recent successful swap — what the
    /// handle keeps serving through any number of failed reloads.
    last_good_epoch: AtomicU64,
    /// Reload failures since the last successful swap; a successful
    /// reload resets it. Readiness probes use this to distinguish "one
    /// bad publish" from "persistently broken model pipeline".
    consecutive_failures: AtomicU64,
    /// Snapshot files the watcher moved aside after a failed load.
    quarantined: AtomicU64,
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle")
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl EngineHandle {
    /// Wraps an already-built engine at epoch 1. `options` is remembered
    /// and applied to every subsequent reload.
    pub fn new(engine: ServingEngine) -> Self {
        let options = *engine.options();
        Self {
            current: RwLock::new(Current {
                engine: Arc::new(engine),
                epoch: 1,
            }),
            epoch: AtomicU64::new(1),
            options,
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            last_good_epoch: AtomicU64::new(1),
            consecutive_failures: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Loads the initial engine from a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] on filesystem failure or a malformed
    /// snapshot.
    pub fn from_snapshot_file<P: AsRef<Path>>(
        path: P,
        options: ServeOptions,
    ) -> Result<Self, ServeError> {
        Ok(Self::new(ServingEngine::from_snapshot_file(path, options)?))
    }

    /// The live engine and the epoch that installed it, as one
    /// consistent pair. Hold the `Arc` for the duration of a request; a
    /// concurrent reload does not disturb it.
    pub fn current(&self) -> (Arc<ServingEngine>, u64) {
        let c = self
            .current
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (Arc::clone(&c.engine), c.epoch)
    }

    /// The live engine (epoch ignored).
    pub fn engine(&self) -> Arc<ServingEngine> {
        self.current().0
    }

    /// The current model epoch (1-based, incremented per swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Successful reloads since start.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Failed reload attempts since start (the previous engine kept
    /// serving through every one of them).
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.load(Ordering::Relaxed)
    }

    /// The epoch of the last *successful* swap — the engine that keeps
    /// serving (and that the system "rolls back" to, by never leaving it)
    /// while reloads fail.
    pub fn last_good_epoch(&self) -> u64 {
        self.last_good_epoch.load(Ordering::Acquire)
    }

    /// Reload failures since the last successful swap (0 when healthy).
    pub fn consecutive_reload_failures(&self) -> u64 {
        self.consecutive_failures.load(Ordering::Relaxed)
    }

    /// Snapshot files the watcher quarantined after a failed load.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Installs an already-built engine, returning the new epoch.
    pub fn swap(&self, engine: ServingEngine) -> u64 {
        let engine = Arc::new(engine);
        let mut c = self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        c.epoch += 1;
        c.engine = engine;
        let epoch = c.epoch;
        self.epoch.store(epoch, Ordering::Release);
        self.last_good_epoch.store(epoch, Ordering::Release);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        self.consecutive_failures.store(0, Ordering::Relaxed);
        epoch
    }

    /// Builds a new engine from snapshot bytes (table rebuilds and all)
    /// *before* touching the live pointer, then swaps. Returns the new
    /// epoch.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] on a malformed snapshot; the
    /// previous engine keeps serving.
    pub fn reload_from_bytes(&self, bytes: &[u8]) -> Result<u64, ServeError> {
        match ServingEngine::from_snapshot_bytes(bytes, self.options) {
            Ok(engine) => Ok(self.swap(engine)),
            Err(e) => {
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// [`EngineHandle::reload_from_bytes`] reading from a file.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] on filesystem failure or a malformed
    /// snapshot; the previous engine keeps serving.
    pub fn reload_from_file<P: AsRef<Path>>(&self, path: P) -> Result<u64, ServeError> {
        match ServingEngine::from_snapshot_file(path, self.options) {
            Ok(engine) => Ok(self.swap(engine)),
            Err(e) => {
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                self.consecutive_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Starts a background thread that polls `path`'s metadata every
    /// `interval` and hot-reloads when the file's modification time or
    /// size changes. Publishers are expected to use the atomic
    /// tmp+fsync+rename writer (`slide_core::snapshot::publish_bytes`),
    /// so a poll can never observe a torn file.
    ///
    /// Failure handling: a missing file or a failed reload leaves the
    /// current engine serving ([`EngineHandle::last_good_epoch`]). A file
    /// that existed but did not load is counted in
    /// [`EngineHandle::reload_failures`], quarantined (best-effort rename
    /// to `<path>.quarantined`, counted in [`EngineHandle::quarantined`])
    /// so the publisher's next atomic publish starts clean and operators
    /// can inspect the bad bytes, and — if it somehow stays in place —
    /// retried under capped exponential backoff
    /// ([`MAX_WATCHER_BACKOFF_TICKS`]) instead of hammering every tick. A
    /// *new* fingerprint (a republish) is always attempted promptly.
    pub fn spawn_watcher(self: &Arc<Self>, path: PathBuf, interval: Duration) -> SnapshotWatcher {
        let handle = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        // The baseline fingerprint is taken synchronously, BEFORE the
        // thread spawns: taken lazily on the watcher thread, a publish
        // that lands between this call returning and the thread first
        // being scheduled would be fingerprinted as "already attempted"
        // and silently never loaded.
        let baseline: Option<(SystemTime, u64)> = fingerprint(&path);
        let thread = std::thread::spawn(move || {
            // The fingerprint of the last load *attempt*, successful or
            // not — a failed file is not retried until it changes or its
            // backoff expires.
            let mut last_attempted = baseline;
            let mut failed_attempts: u32 = 0;
            let mut skip_ticks: u32 = 0;
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Some(seen) = fingerprint(&path) else {
                    continue;
                };
                if Some(seen) == last_attempted {
                    if failed_attempts == 0 {
                        continue;
                    }
                    // Unchanged bytes that already failed: honor the
                    // backoff before retrying.
                    if skip_ticks > 0 {
                        skip_ticks -= 1;
                        continue;
                    }
                }
                last_attempted = Some(seen);
                match handle.reload_from_file(&path) {
                    Ok(_) => {
                        failed_attempts = 0;
                        skip_ticks = 0;
                    }
                    Err(_) => {
                        failed_attempts = failed_attempts.saturating_add(1);
                        skip_ticks = 1u32
                            .checked_shl(failed_attempts.min(8))
                            .unwrap_or(MAX_WATCHER_BACKOFF_TICKS)
                            .min(MAX_WATCHER_BACKOFF_TICKS);
                        let mut quarantine = path.clone().into_os_string();
                        quarantine.push(".quarantined");
                        if std::fs::rename(&path, PathBuf::from(quarantine)).is_ok() {
                            handle.quarantined.fetch_add(1, Ordering::Relaxed);
                            // The bad file is gone; the next fingerprint
                            // at this path is a fresh publish.
                            last_attempted = None;
                            skip_ticks = 0;
                        }
                    }
                }
            }
        });
        SnapshotWatcher {
            stop,
            thread: Some(thread),
        }
    }
}

/// Longest the watcher waits (in poll ticks) before retrying a snapshot
/// file that repeatedly failed to load and could not be quarantined.
pub const MAX_WATCHER_BACKOFF_TICKS: u32 = 32;

fn fingerprint(path: &Path) -> Option<(SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

/// Guard for a running snapshot watcher thread; stops and joins it on
/// drop.
#[derive(Debug)]
pub struct SnapshotWatcher {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SnapshotWatcher {
    /// Stops the poll loop and joins the thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

impl Drop for SnapshotWatcher {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slide_core::config::{LshLayerConfig, NetworkConfig};
    use slide_core::Network;
    use slide_data::synth::{generate, SyntheticConfig};
    use slide_data::SparseVector;

    fn tiny_network(seed: u64) -> (Network, slide_data::synth::SyntheticData) {
        let data = generate(&SyntheticConfig::tiny().with_seed(2));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(seed)
            .build()
            .unwrap();
        (Network::new(config).unwrap(), data)
    }

    #[test]
    fn swap_increments_epoch_and_serves_new_engine() {
        let (a, data) = tiny_network(1);
        let (b, _) = tiny_network(2);
        let options = ServeOptions::default().with_top_k(1);
        let handle = EngineHandle::new(ServingEngine::new(a, options));
        assert_eq!(handle.epoch(), 1);

        let ex = &data.test.examples()[0];
        let direct_b = ServingEngine::new(
            Network::from_snapshot_bytes(&b.to_snapshot_bytes()).unwrap(),
            options,
        );
        let want = direct_b.predict(&ex.features).unwrap().topk.top1();

        let epoch = handle.reload_from_bytes(&b.to_snapshot_bytes()).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(handle.epoch(), 2);
        assert_eq!(handle.reloads(), 1);
        let (engine, epoch) = handle.current();
        assert_eq!(epoch, 2);
        assert_eq!(engine.predict(&ex.features).unwrap().topk.top1(), want);
    }

    #[test]
    fn failed_reload_keeps_old_engine() {
        let (a, data) = tiny_network(3);
        let handle = EngineHandle::new(ServingEngine::new(a, ServeOptions::default()));
        let err = handle.reload_from_bytes(b"not a snapshot").unwrap_err();
        assert!(matches!(err, ServeError::Core(_)));
        assert_eq!(handle.epoch(), 1);
        assert_eq!(handle.reload_failures(), 1);
        // Still serving.
        let (engine, _) = handle.current();
        assert!(engine.predict(&data.test.examples()[0].features).is_ok());
    }

    #[test]
    fn in_flight_holders_keep_the_old_epoch() {
        let (a, _) = tiny_network(4);
        let (b, _) = tiny_network(5);
        let handle = EngineHandle::new(ServingEngine::new(a, ServeOptions::default()));
        let (old_engine, old_epoch) = handle.current();
        handle.reload_from_bytes(&b.to_snapshot_bytes()).unwrap();
        // The pre-reload holder still owns a working epoch-1 engine.
        assert_eq!(old_epoch, 1);
        assert!(Arc::strong_count(&old_engine) >= 1);
        let (new_engine, new_epoch) = handle.current();
        assert_eq!(new_epoch, 2);
        assert!(!Arc::ptr_eq(&old_engine, &new_engine));
    }

    #[test]
    fn reload_restores_configured_top_k_on_a_wider_model() {
        // A 4-class first model must not permanently clamp the
        // configured top_k: after hot-reloading a 60-class model, the
        // default request serves the operator's 10 again.
        let narrow = NetworkConfig::builder(32, 4)
            .hidden(8)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(1)
            .build()
            .unwrap();
        let wide = NetworkConfig::builder(32, 60)
            .hidden(8)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(2)
            .build()
            .unwrap();
        let options = ServeOptions::default().with_top_k(10);
        let handle = EngineHandle::new(ServingEngine::new(Network::new(narrow).unwrap(), options));
        assert_eq!(handle.engine().default_top_k(), 4);
        assert_eq!(handle.engine().options().top_k, 10);
        let bytes = Network::new(wide).unwrap().to_snapshot_bytes();
        handle.reload_from_bytes(&bytes).unwrap();
        assert_eq!(handle.engine().default_top_k(), 10);
    }

    #[test]
    fn failed_reload_tracks_last_good_and_consecutive_failures() {
        let (a, _) = tiny_network(11);
        let (b, _) = tiny_network(12);
        let handle = EngineHandle::new(ServingEngine::new(a, ServeOptions::default()));
        assert_eq!(handle.last_good_epoch(), 1);
        for i in 1..=3u64 {
            handle.reload_from_bytes(b"junk").unwrap_err();
            assert_eq!(handle.consecutive_reload_failures(), i);
            assert_eq!(handle.last_good_epoch(), 1, "still on the good engine");
        }
        // A good reload clears the streak and advances last-good.
        handle.reload_from_bytes(&b.to_snapshot_bytes()).unwrap();
        assert_eq!(handle.consecutive_reload_failures(), 0);
        assert_eq!(handle.last_good_epoch(), 2);
        assert_eq!(handle.reload_failures(), 3, "total failures are kept");
    }

    #[test]
    fn watcher_quarantines_a_corrupt_publish_and_recovers_on_the_next_good_one() {
        let (a, _) = tiny_network(13);
        let (b, _) = tiny_network(14);
        let dir = std::env::temp_dir().join(format!("slide_quarantine_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.slidesnap");
        a.save_snapshot(&path).unwrap();

        let handle =
            Arc::new(EngineHandle::from_snapshot_file(&path, ServeOptions::default()).unwrap());
        let watcher = handle.spawn_watcher(path.clone(), Duration::from_millis(10));

        // Publish garbage (atomically, so the watcher sees a complete
        // bad file, not a torn one).
        std::thread::sleep(Duration::from_millis(30));
        slide_core::snapshot::publish_bytes(&path, b"definitely not a snapshot").unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.reload_failures() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(handle.reload_failures() >= 1, "bad publish never attempted");
        assert_eq!(handle.epoch(), 1, "bad publish must not advance the epoch");
        assert_eq!(handle.last_good_epoch(), 1);

        // The bad file was moved aside.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.quarantined() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(handle.quarantined(), 1);
        let mut qpath = path.clone().into_os_string();
        qpath.push(".quarantined");
        assert!(std::path::PathBuf::from(qpath).exists());

        // The next good publish is picked up promptly.
        b.save_snapshot(&path).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.epoch() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        watcher.stop();
        assert!(handle.epoch() >= 2, "good republish never loaded");
        assert_eq!(handle.consecutive_reload_failures(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watcher_never_installs_a_slow_non_atomic_write() {
        // Regression for the mid-copy race: a publisher that streams the
        // snapshot into place chunk by chunk (the pre-atomic-writer
        // behavior) must never get a torn prefix installed as an engine.
        let (a, _) = tiny_network(15);
        let (b, _) = tiny_network(16);
        let dir = std::env::temp_dir().join(format!("slide_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.slidesnap");
        a.save_snapshot(&path).unwrap();

        let handle =
            Arc::new(EngineHandle::from_snapshot_file(&path, ServeOptions::default()).unwrap());
        let watcher = handle.spawn_watcher(path.clone(), Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));

        // Slow non-atomic rewrite: truncate, then dribble the bytes out
        // over many poll intervals.
        let bytes = b.to_snapshot_bytes();
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&path).unwrap();
            for chunk in bytes.chunks(64.max(bytes.len() / 40)) {
                f.write_all(chunk).unwrap();
                f.flush().unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        std::thread::sleep(Duration::from_millis(100));
        watcher.stop();
        // Every mid-write observation must have been rejected: the epoch
        // either stayed at 1 (torn reads failed; the finished file may
        // have been quarantined mid-write) or reached exactly 2 (the
        // watcher happened to only see the completed file). What can
        // NEVER happen is an engine built from a torn prefix — the
        // checksum rejects it — so any swap that did land serves the
        // complete snapshot b.
        if handle.epoch() > 1 {
            let (engine, _) = handle.current();
            assert_eq!(
                engine.network().to_snapshot_bytes().len(),
                bytes.len(),
                "installed engine must come from the complete file"
            );
        } else {
            assert_eq!(handle.last_good_epoch(), 1);
            let (engine, _) = handle.current();
            // Still serving the original snapshot a.
            assert!(engine
                .predict(&SparseVector::from_pairs([(0, 1.0)]))
                .is_ok());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watcher_reloads_when_the_file_changes() {
        let (a, _) = tiny_network(6);
        let (b, _) = tiny_network(7);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("slide_watch_{}.slidesnap", std::process::id()));
        a.save_snapshot(&path).unwrap();

        let handle =
            Arc::new(EngineHandle::from_snapshot_file(&path, ServeOptions::default()).unwrap());
        let watcher = handle.spawn_watcher(path.clone(), Duration::from_millis(20));

        // Same-config snapshots have identical length, so the sleep
        // guarantees the rewrite lands with a distinct mtime.
        std::thread::sleep(Duration::from_millis(60));
        b.save_snapshot(&path).unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.epoch() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        watcher.stop();
        std::fs::remove_file(&path).ok();
        assert!(handle.epoch() >= 2, "watcher never picked up the rewrite");
    }

    /// Regression: the baseline fingerprint must be taken synchronously
    /// by `spawn_watcher`, not lazily on the watcher thread. Taken
    /// lazily, a publish landing between `spawn_watcher` returning and
    /// the thread's first schedule gets fingerprinted as "already
    /// attempted" and is silently never loaded — so publishing
    /// *immediately* after spawn must still reload.
    #[test]
    fn watcher_sees_a_publish_landing_immediately_after_spawn() {
        let (a, _) = tiny_network(6);
        let (b, _) = tiny_network(7);
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "slide_watch_races_{}.slidesnap",
            std::process::id()
        ));
        a.save_snapshot(&path).unwrap();

        let handle =
            Arc::new(EngineHandle::from_snapshot_file(&path, ServeOptions::default()).unwrap());
        let watcher = handle.spawn_watcher(path.clone(), Duration::from_millis(20));
        // No sleep: race the watcher thread's startup on purpose.
        b.save_snapshot(&path).unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.epoch() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        watcher.stop();
        std::fs::remove_file(&path).ok();
        assert!(
            handle.epoch() >= 2,
            "a publish racing the watcher's startup was never loaded"
        );
    }
}
