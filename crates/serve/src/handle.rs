//! Epoch-counted engine swapping — zero-downtime snapshot hot-reload.
//!
//! An [`EngineHandle`] sits between the network front-end and the
//! [`ServingEngine`]: request paths grab the current `Arc<ServingEngine>`
//! (plus the epoch that built it) and keep using it for however long
//! their request takes, while a reload builds the *next* engine entirely
//! off to the side and then swaps the shared pointer in one short write
//! — no request ever observes a half-loaded model, and in-flight
//! requests finish on the epoch they started with. The old engine is
//! freed when the last in-flight holder drops its `Arc`.
//!
//! Reloads come from two places: an explicit call (the HTTP front-end's
//! `POST /v1/reload`) and the optional [`SnapshotWatcher`] poll loop
//! that watches a snapshot file's metadata and reloads when it changes —
//! the "retrain somewhere, copy the file over, the server picks it up"
//! deployment story.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, SystemTime};

use crate::engine::{ServeOptions, ServingEngine};
use crate::error::ServeError;

struct Current {
    engine: Arc<ServingEngine>,
    epoch: u64,
}

/// Hot-swappable handle to the live [`ServingEngine`].
///
/// Cheap to read (one `RwLock` read acquisition returning a cloned
/// `Arc`), rare to write (a reload). The epoch starts at 1 and
/// increments on every successful swap; it is the version the HTTP
/// layer reports in every response so a client can tell which model
/// answered.
pub struct EngineHandle {
    current: RwLock<Current>,
    /// Mirror of the epoch inside the lock, for lock-free reads on the
    /// health path.
    epoch: AtomicU64,
    /// Options every reload rebuilds the engine with.
    options: ServeOptions,
    reloads: AtomicU64,
    reload_failures: AtomicU64,
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle")
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl EngineHandle {
    /// Wraps an already-built engine at epoch 1. `options` is remembered
    /// and applied to every subsequent reload.
    pub fn new(engine: ServingEngine) -> Self {
        let options = *engine.options();
        Self {
            current: RwLock::new(Current {
                engine: Arc::new(engine),
                epoch: 1,
            }),
            epoch: AtomicU64::new(1),
            options,
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
        }
    }

    /// Loads the initial engine from a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] on filesystem failure or a malformed
    /// snapshot.
    pub fn from_snapshot_file<P: AsRef<Path>>(
        path: P,
        options: ServeOptions,
    ) -> Result<Self, ServeError> {
        Ok(Self::new(ServingEngine::from_snapshot_file(path, options)?))
    }

    /// The live engine and the epoch that installed it, as one
    /// consistent pair. Hold the `Arc` for the duration of a request; a
    /// concurrent reload does not disturb it.
    pub fn current(&self) -> (Arc<ServingEngine>, u64) {
        let c = self
            .current
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (Arc::clone(&c.engine), c.epoch)
    }

    /// The live engine (epoch ignored).
    pub fn engine(&self) -> Arc<ServingEngine> {
        self.current().0
    }

    /// The current model epoch (1-based, incremented per swap).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Successful reloads since start.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Failed reload attempts since start (the previous engine kept
    /// serving through every one of them).
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.load(Ordering::Relaxed)
    }

    /// Installs an already-built engine, returning the new epoch.
    pub fn swap(&self, engine: ServingEngine) -> u64 {
        let engine = Arc::new(engine);
        let mut c = self
            .current
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        c.epoch += 1;
        c.engine = engine;
        let epoch = c.epoch;
        self.epoch.store(epoch, Ordering::Release);
        self.reloads.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    /// Builds a new engine from snapshot bytes (table rebuilds and all)
    /// *before* touching the live pointer, then swaps. Returns the new
    /// epoch.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] on a malformed snapshot; the
    /// previous engine keeps serving.
    pub fn reload_from_bytes(&self, bytes: &[u8]) -> Result<u64, ServeError> {
        match ServingEngine::from_snapshot_bytes(bytes, self.options) {
            Ok(engine) => Ok(self.swap(engine)),
            Err(e) => {
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// [`EngineHandle::reload_from_bytes`] reading from a file.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] on filesystem failure or a malformed
    /// snapshot; the previous engine keeps serving.
    pub fn reload_from_file<P: AsRef<Path>>(&self, path: P) -> Result<u64, ServeError> {
        match ServingEngine::from_snapshot_file(path, self.options) {
            Ok(engine) => Ok(self.swap(engine)),
            Err(e) => {
                self.reload_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Starts a background thread that polls `path`'s metadata every
    /// `interval` and hot-reloads when the file's modification time or
    /// size changes. A missing file or a failed reload leaves the
    /// current engine serving and is retried on the next tick (counted
    /// in [`EngineHandle::reload_failures`] when the file existed but
    /// did not load).
    pub fn spawn_watcher(self: &Arc<Self>, path: PathBuf, interval: Duration) -> SnapshotWatcher {
        let handle = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut last_seen: Option<(SystemTime, u64)> = fingerprint(&path);
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let seen = fingerprint(&path);
                if seen.is_some() && seen != last_seen {
                    // Reload failures keep last_seen updated so a bad
                    // snapshot isn't re-tried every tick until it
                    // changes again.
                    handle.reload_from_file(&path).ok();
                    last_seen = seen;
                }
            }
        });
        SnapshotWatcher {
            stop,
            thread: Some(thread),
        }
    }
}

fn fingerprint(path: &Path) -> Option<(SystemTime, u64)> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

/// Guard for a running snapshot watcher thread; stops and joins it on
/// drop.
#[derive(Debug)]
pub struct SnapshotWatcher {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SnapshotWatcher {
    /// Stops the poll loop and joins the thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

impl Drop for SnapshotWatcher {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slide_core::config::{LshLayerConfig, NetworkConfig};
    use slide_core::Network;
    use slide_data::synth::{generate, SyntheticConfig};

    fn tiny_network(seed: u64) -> (Network, slide_data::synth::SyntheticData) {
        let data = generate(&SyntheticConfig::tiny().with_seed(2));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(seed)
            .build()
            .unwrap();
        (Network::new(config).unwrap(), data)
    }

    #[test]
    fn swap_increments_epoch_and_serves_new_engine() {
        let (a, data) = tiny_network(1);
        let (b, _) = tiny_network(2);
        let options = ServeOptions::default().with_top_k(1);
        let handle = EngineHandle::new(ServingEngine::new(a, options));
        assert_eq!(handle.epoch(), 1);

        let ex = &data.test.examples()[0];
        let direct_b = ServingEngine::new(
            Network::from_snapshot_bytes(&b.to_snapshot_bytes()).unwrap(),
            options,
        );
        let want = direct_b.predict(&ex.features).unwrap().topk.top1();

        let epoch = handle.reload_from_bytes(&b.to_snapshot_bytes()).unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(handle.epoch(), 2);
        assert_eq!(handle.reloads(), 1);
        let (engine, epoch) = handle.current();
        assert_eq!(epoch, 2);
        assert_eq!(engine.predict(&ex.features).unwrap().topk.top1(), want);
    }

    #[test]
    fn failed_reload_keeps_old_engine() {
        let (a, data) = tiny_network(3);
        let handle = EngineHandle::new(ServingEngine::new(a, ServeOptions::default()));
        let err = handle.reload_from_bytes(b"not a snapshot").unwrap_err();
        assert!(matches!(err, ServeError::Core(_)));
        assert_eq!(handle.epoch(), 1);
        assert_eq!(handle.reload_failures(), 1);
        // Still serving.
        let (engine, _) = handle.current();
        assert!(engine.predict(&data.test.examples()[0].features).is_ok());
    }

    #[test]
    fn in_flight_holders_keep_the_old_epoch() {
        let (a, _) = tiny_network(4);
        let (b, _) = tiny_network(5);
        let handle = EngineHandle::new(ServingEngine::new(a, ServeOptions::default()));
        let (old_engine, old_epoch) = handle.current();
        handle.reload_from_bytes(&b.to_snapshot_bytes()).unwrap();
        // The pre-reload holder still owns a working epoch-1 engine.
        assert_eq!(old_epoch, 1);
        assert!(Arc::strong_count(&old_engine) >= 1);
        let (new_engine, new_epoch) = handle.current();
        assert_eq!(new_epoch, 2);
        assert!(!Arc::ptr_eq(&old_engine, &new_engine));
    }

    #[test]
    fn reload_restores_configured_top_k_on_a_wider_model() {
        // A 4-class first model must not permanently clamp the
        // configured top_k: after hot-reloading a 60-class model, the
        // default request serves the operator's 10 again.
        let narrow = NetworkConfig::builder(32, 4)
            .hidden(8)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(1)
            .build()
            .unwrap();
        let wide = NetworkConfig::builder(32, 60)
            .hidden(8)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(2)
            .build()
            .unwrap();
        let options = ServeOptions::default().with_top_k(10);
        let handle = EngineHandle::new(ServingEngine::new(Network::new(narrow).unwrap(), options));
        assert_eq!(handle.engine().default_top_k(), 4);
        assert_eq!(handle.engine().options().top_k, 10);
        let bytes = Network::new(wide).unwrap().to_snapshot_bytes();
        handle.reload_from_bytes(&bytes).unwrap();
        assert_eq!(handle.engine().default_top_k(), 10);
    }

    #[test]
    fn watcher_reloads_when_the_file_changes() {
        let (a, _) = tiny_network(6);
        let (b, _) = tiny_network(7);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("slide_watch_{}.slidesnap", std::process::id()));
        a.save_snapshot(&path).unwrap();

        let handle =
            Arc::new(EngineHandle::from_snapshot_file(&path, ServeOptions::default()).unwrap());
        let watcher = handle.spawn_watcher(path.clone(), Duration::from_millis(20));

        // Same-config snapshots have identical length, so the sleep
        // guarantees the rewrite lands with a distinct mtime.
        std::thread::sleep(Duration::from_millis(60));
        b.save_snapshot(&path).unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.epoch() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        watcher.stop();
        std::fs::remove_file(&path).ok();
        assert!(handle.epoch() >= 2, "watcher never picked up the rewrite");
    }
}
