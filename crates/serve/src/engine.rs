//! The blocking inference engine: a frozen network, a workspace pool, and
//! latency/throughput counters.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use slide_core::inference::{BatchScratch, InferenceSelector, TopK};
use slide_core::{Network, WorkspacePool};
use slide_data::SparseVector;
use slide_lsh::QueryBudget;

use crate::error::ServeError;

/// Inference configuration for a [`ServingEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOptions {
    /// Classes returned per request.
    pub top_k: usize,
    /// LSH probe budget per request (tables probed / candidates unioned).
    pub budget: QueryBudget,
    /// Dense-score a layer whose retrieval found no candidates, so every
    /// request gets an answer (default on).
    pub dense_fallback: bool,
    /// Rebuild the hash tables from *centered* weight rows on engine
    /// construction (default on). Softmax training leaves all rows
    /// sharing a large common component that wrecks cosine retrieval;
    /// centering removes it without changing any score ranking. See
    /// `LshLayerConfig::center_rows`.
    pub center_rows: bool,
    /// Seed for the workspace pool's RNG streams (inference itself is
    /// deterministic; this only names the streams).
    pub seed: u64,
    /// Score batches through the snapshot's quantized output rows when it
    /// carries them (default on). The fused i16 path halves the weight
    /// bytes each candidate row streams through the cache; disable to
    /// force the f32 gather kernels on a quantized snapshot (the loader
    /// dequantizes into the network, so both paths score the same
    /// values). No effect on f32 snapshots.
    pub use_quantized: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        // min_collisions 2: a genuinely similar neuron collides with the
        // query in several of the L tables, an accidental one in one or
        // two — requiring a second hit roughly halves the candidate set
        // for ~1% argmax-recall cost.
        Self {
            top_k: 5,
            budget: QueryBudget::all().with_min_collisions(2),
            dense_fallback: true,
            center_rows: true,
            seed: 0x5E4E,
            use_quantized: true,
        }
    }
}

impl ServeOptions {
    /// Sets the classes returned per request (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `top_k == 0`.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        assert!(top_k > 0, "top_k must be positive");
        self.top_k = top_k;
        self
    }

    /// Sets the LSH probe budget (builder style).
    pub fn with_budget(mut self, budget: QueryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables/disables the empty-retrieval dense fallback (builder
    /// style).
    pub fn with_dense_fallback(mut self, enabled: bool) -> Self {
        self.dense_fallback = enabled;
        self
    }

    /// Enables/disables the centered-row table rebuild on engine
    /// construction (builder style).
    pub fn with_center_rows(mut self, enabled: bool) -> Self {
        self.center_rows = enabled;
        self
    }

    /// Enables/disables batched scoring through quantized snapshot rows
    /// (builder style).
    pub fn with_use_quantized(mut self, enabled: bool) -> Self {
        self.use_quantized = enabled;
        self
    }
}

/// One answered request: the ranked classes and the engine-side latency
/// (selection + scoring + reduction; queueing time excluded).
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The `top_k` best classes, best-first.
    pub topk: TopK,
    /// Time spent computing this prediction.
    pub latency: Duration,
}

/// Monotonic counters aggregated across all threads using an engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests answered.
    pub requests: u64,
    /// Summed compute latency, nanoseconds.
    pub total_latency_ns: u64,
    /// Worst single-request compute latency, nanoseconds.
    pub max_latency_ns: u64,
    /// Requests whose LSH output layer ran fully dense (empty retrieval
    /// fell back, or the union degenerated to the whole layer). A high
    /// ratio means the engine is serving O(classes) despite its
    /// sub-linear configuration.
    pub dense_fallbacks: u64,
}

impl EngineStats {
    /// Mean compute latency per request.
    pub fn mean_latency(&self) -> Duration {
        Duration::from_nanos(
            self.total_latency_ns
                .checked_div(self.requests)
                .unwrap_or(0),
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    total_latency_ns: AtomicU64,
    max_latency_ns: AtomicU64,
    dense_fallbacks: AtomicU64,
}

/// A frozen network behind a blocking `predict` API.
///
/// The engine owns the [`Network`] immutably — no training, no table
/// rebuilds after load — so any number of threads may call
/// [`ServingEngine::predict`] concurrently; each call checks a private
/// [`slide_core::Workspace`] out of the shared pool (created once, reused
/// forever, zero steady-state allocation).
///
/// # Example
///
/// Freeze a network to snapshot bytes, load it into an engine, answer a
/// request, and read the latency counters:
///
/// ```
/// use slide_core::config::{LshLayerConfig, NetworkConfig};
/// use slide_core::Network;
/// use slide_data::SparseVector;
/// use slide_serve::{ServeOptions, ServingEngine};
///
/// let config = NetworkConfig::builder(100, 20)
///     .hidden(8)
///     .output_lsh(LshLayerConfig::simhash(3, 4))
///     .seed(1)
///     .build()?;
/// let network = Network::new(config)?;
///
/// let engine = ServingEngine::from_snapshot_bytes(
///     &network.to_snapshot_bytes(),
///     ServeOptions::default().with_top_k(3),
/// )?;
/// let answer = engine.predict(&SparseVector::from_pairs([(4, 1.0), (17, 2.0)]))?;
/// assert!(!answer.topk.items().is_empty());
/// assert_eq!(engine.stats().requests, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ServingEngine {
    network: Network,
    /// The snapshot's i16 output rows, when it carried them and
    /// [`ServeOptions::use_quantized`] kept them. Batched scoring runs
    /// the fused `dot_batch_q16` path over these instead of gathering
    /// f32 rows.
    quantized: Option<slide_core::QuantizedRows>,
    selector: InferenceSelector,
    options: ServeOptions,
    pool: WorkspacePool,
    counters: Counters,
    /// Global class id of this engine's first output neuron. Non-zero
    /// only for engines loaded from a snapshot *slice*
    /// ([`ServingEngine::from_slice_bytes`]): the network scores local
    /// neurons `0..units`, and every returned class id is offset into the
    /// global space so a scatter-gather router can merge shard answers
    /// directly.
    class_offset: u32,
    /// The class-id space requests are validated against — the full
    /// model's output width, even when this engine holds only a slice of
    /// it (a shard must accept the same `k` range the unsharded engine
    /// does, then return its best `min(k, units)` rows).
    total_classes: usize,
}

impl ServingEngine {
    /// Wraps an already-built (typically snapshot-restored) network,
    /// switching its tables to centered-row hashing unless
    /// [`ServeOptions::center_rows`] is off. No quantized rows: batches
    /// score through the f32 gather kernels.
    pub fn new(network: Network, options: ServeOptions) -> Self {
        Self::with_quantized(network, None, options)
    }

    /// [`ServingEngine::new`] with the output layer's quantized rows
    /// (typically [`slide_core::LoadedSnapshot::quantized`]) attached for
    /// the fused i16 batch-scoring path. Ignored when
    /// [`ServeOptions::use_quantized`] is off.
    ///
    /// # Panics
    ///
    /// Panics if `quantized`'s shape does not match the network's output
    /// layer.
    pub fn with_quantized(
        mut network: Network,
        quantized: Option<slide_core::QuantizedRows>,
        options: ServeOptions,
    ) -> Self {
        assert!(options.top_k > 0, "top_k must be positive");
        if let Some(q) = &quantized {
            let last = network.layers().len() - 1;
            let out = &network.layers()[last];
            assert_eq!(q.units(), out.units(), "quantized units mismatch");
            assert_eq!(q.fan_in(), out.fan_in(), "quantized fan-in mismatch");
        }
        network.set_lsh_centering(options.center_rows);
        let selector =
            InferenceSelector::new(options.budget).with_dense_fallback(options.dense_fallback);
        let total_classes = network.output_dim();
        Self {
            selector,
            quantized: if options.use_quantized {
                quantized
            } else {
                None
            },
            pool: WorkspacePool::new(options.seed, true),
            counters: Counters::default(),
            network,
            options,
            class_offset: 0,
            total_classes,
        }
    }

    /// Restores a network from snapshot bytes and wraps it. The desired
    /// centering mode is applied *during* the restore, so the tables are
    /// built once in the right geometry instead of rebuilt afterwards.
    /// A quantized snapshot's output rows are kept for the fused i16
    /// batch-scoring path (unless [`ServeOptions::use_quantized`] is
    /// off).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] on a malformed snapshot.
    pub fn from_snapshot_bytes(bytes: &[u8], options: ServeOptions) -> Result<Self, ServeError> {
        let loaded =
            slide_core::snapshot::read_snapshot_with_centering(bytes, Some(options.center_rows))?;
        Ok(Self::with_quantized(
            loaded.network,
            loaded.quantized,
            options,
        ))
    }

    /// Restores a *shard* engine from snapshot-slice bytes
    /// (`slide_core::snapshot::slice_snapshot`): a network holding only
    /// the slice's contiguous output-neuron range, scoring those rows
    /// bit-identically to the full engine — same hash family, same
    /// centering vector (carried by the slice), same weight bits — with
    /// every returned class id offset back into the global space.
    /// Requests are still validated against the *full* model's class
    /// count, so a scatter-gather router can fan the same request to
    /// every shard and merge the answers.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] on malformed slice bytes.
    pub fn from_slice_bytes(bytes: &[u8], options: ServeOptions) -> Result<Self, ServeError> {
        let loaded = slide_core::snapshot::read_slice(bytes, Some(options.center_rows))?;
        let mut engine =
            Self::with_quantized(loaded.snapshot.network, loaded.snapshot.quantized, options);
        engine.class_offset = loaded.lo as u32;
        engine.total_classes = loaded.total;
        Ok(engine)
    }

    /// Loads a snapshot file and wraps the restored network (centering
    /// applied during the restore, as in
    /// [`ServingEngine::from_snapshot_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Core`] on filesystem failure or a malformed
    /// snapshot.
    pub fn from_snapshot_file<P: AsRef<Path>>(
        path: P,
        options: ServeOptions,
    ) -> Result<Self, ServeError> {
        use std::io::Read;
        let mut bytes = Vec::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(slide_core::snapshot::SnapshotError::from)?;
        Self::from_snapshot_bytes(&bytes, options)
    }

    /// The frozen network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Whether batched scoring runs over quantized i16 output rows.
    pub fn quantized_active(&self) -> bool {
        self.quantized.is_some()
    }

    /// The inference options.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Answers one request with the configured `top_k`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FeatureIndexOutOfRange`] if the request's
    /// feature indices do not fit the network's input dimension.
    pub fn predict(&self, features: &SparseVector) -> Result<Prediction, ServeError> {
        self.predict_k(features, self.default_top_k())
    }

    /// The configured `top_k`, clamped to this model's class count.
    /// The clamp happens per use, not at construction, so the pristine
    /// [`ServeOptions`] carried across hot reloads keeps the operator's
    /// configured value — a later, wider model serves the full `top_k`
    /// again. Wire-supplied `k` overrides are validated strictly instead
    /// (see [`ServingEngine::validate_request`]).
    pub fn default_top_k(&self) -> usize {
        self.options.top_k.min(self.total_classes)
    }

    /// Global class id of this engine's first output neuron (non-zero
    /// only for slice-loaded shard engines).
    pub fn class_offset(&self) -> u32 {
        self.class_offset
    }

    /// The class-id space requests are validated against: the full
    /// model's output width, even for a slice-loaded shard engine.
    pub fn total_classes(&self) -> usize {
        self.total_classes
    }

    /// Answers one request with an explicit `k`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidTopK`] if `k == 0`, or
    /// [`ServeError::FeatureIndexOutOfRange`] if the request's feature
    /// indices do not fit the network's input dimension.
    pub fn predict_k(&self, features: &SparseVector, k: usize) -> Result<Prediction, ServeError> {
        let mut ws = self.checkout_workspace();
        self.predict_in(&mut ws, features, k)
    }

    /// The input feature dimension requests must fit in.
    pub fn input_dim(&self) -> usize {
        self.network.config().input_dim
    }

    /// Number of hash tables behind the output layer (0 for a dense
    /// output layer).
    pub fn output_tables(&self) -> usize {
        let last = self.network.layers().len() - 1;
        self.network.layers()[last]
            .lsh()
            .map(|l| l.tables().num_tables())
            .unwrap_or(0)
    }

    /// Builds the selector for graceful-degradation `level`: the
    /// configured [`QueryBudget`] stepwise-shrunk by
    /// [`QueryBudget::degraded`] against this model's table count and
    /// output dimension. Level 0 reproduces the engine's own selector.
    pub fn degraded_selector(&self, level: u32) -> InferenceSelector {
        let budget = self
            .options
            .budget
            .degraded(level, self.output_tables(), self.output_dim());
        InferenceSelector::new(budget).with_dense_fallback(self.options.dense_fallback)
    }

    /// The number of output classes (also the largest accepted `top_k`).
    pub fn output_dim(&self) -> usize {
        self.network.output_dim()
    }

    /// Validates one request against the engine: `k` positive and at
    /// most the *full model's* class count (`TopK` preallocates `k`
    /// slots — a wire-supplied `k` must not be able to demand an
    /// arbitrary allocation), every feature index inside the input
    /// dimension. Runs before any weight access — an unchecked
    /// out-of-range index would read another neuron's weights or index
    /// past the weight array inside the forward pass. Slice-loaded shard
    /// engines validate against `total_classes`, not their local width,
    /// so every shard accepts exactly the requests the full engine
    /// would.
    pub fn validate_request(&self, features: &SparseVector, k: usize) -> Result<(), ServeError> {
        if k == 0 || k > self.total_classes {
            return Err(ServeError::InvalidTopK {
                k,
                max: self.total_classes,
            });
        }
        let needed = features.min_dim();
        if needed > self.input_dim() {
            return Err(ServeError::FeatureIndexOutOfRange {
                needed_dim: needed,
                input_dim: self.input_dim(),
            });
        }
        Ok(())
    }

    /// Checks a workspace out of the engine's pool; long-lived callers
    /// (the batch server's workers) hold one across many requests.
    pub(crate) fn checkout_workspace(&self) -> slide_core::network::PooledWorkspace<'_> {
        self.pool.acquire(&self.network)
    }

    /// Answers one request through a caller-held workspace, as a
    /// batch-of-1 through [`ServingEngine::predict_batch_in`]. The whole
    /// serving surface therefore has ONE scoring path: the fused batch
    /// kernels accumulate each example in a fixed order independent of
    /// batch size or composition, so a request answered alone is
    /// bit-identical to the same request coalesced into a
    /// cross-connection micro-batch (pinned by
    /// `single_and_batched_predictions_are_bit_identical`).
    ///
    /// Validation ([`ServingEngine::validate_request`]) runs first, so a
    /// malformed request returns a typed error before any weight access.
    pub(crate) fn predict_in(
        &self,
        ws: &mut slide_core::Workspace,
        features: &SparseVector,
        k: usize,
    ) -> Result<Prediction, ServeError> {
        self.predict_in_with(ws, features, k, &self.selector)
    }

    /// [`ServingEngine::predict_in`] scoring through an explicit
    /// `selector` — the batch server's graceful-degradation path, which
    /// answers under a shrunk [`QueryBudget`] when the admission queue
    /// backs up.
    pub(crate) fn predict_in_with(
        &self,
        ws: &mut slide_core::Workspace,
        features: &SparseVector,
        k: usize,
        selector: &InferenceSelector,
    ) -> Result<Prediction, ServeError> {
        // The scratch holds no network-specific state (cleared and
        // refilled per call), so one per thread is shared across
        // engines/epochs.
        thread_local! {
            static SCRATCH: std::cell::RefCell<BatchScratch> =
                std::cell::RefCell::new(BatchScratch::default());
        }
        let mut out = Vec::with_capacity(1);
        SCRATCH.with(|scratch| {
            self.predict_batch_in_with(
                ws,
                &mut scratch.borrow_mut(),
                std::slice::from_ref(features),
                &[k],
                &mut out,
                selector,
            )
        })?;
        // lint:allow(no-panic-paths): predict_batch_in_with pushes exactly
        // one prediction per input on Ok, and it was given one input.
        Ok(out.pop().expect("batch-of-1 yields one prediction"))
    }

    /// Answers a batch of requests with the configured `top_k` through
    /// the fused shared-union scoring path (each candidate weight row
    /// streams through the cache once for the whole batch). Results are
    /// *bit-identical* to per-request [`ServingEngine::predict`] — the
    /// kernels accumulate each example in a fixed order independent of
    /// batch composition, and singles route through the same path as a
    /// batch-of-1 — so batching is purely an execution detail.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::FeatureIndexOutOfRange`] if any request's
    /// feature indices do not fit the network's input dimension; the
    /// whole batch is rejected before any compute.
    pub fn predict_batch(&self, features: &[SparseVector]) -> Result<Vec<Prediction>, ServeError> {
        self.predict_batch_k(features, self.default_top_k())
    }

    /// [`ServingEngine::predict_batch`] with an explicit `k` for every
    /// request (the HTTP front-end's per-request `top_k` override).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidTopK`] if `k == 0`, or
    /// [`ServeError::FeatureIndexOutOfRange`] if any request's feature
    /// indices do not fit the network's input dimension.
    pub fn predict_batch_k(
        &self,
        features: &[SparseVector],
        k: usize,
    ) -> Result<Vec<Prediction>, ServeError> {
        // Batched-scoring scratch is reused per thread, mirroring what
        // the batch server's workers do explicitly: HTTP connection
        // threads are long-lived, so after the first batch the hot path
        // allocates nothing but the results. (The scratch holds no
        // network-specific state — it is cleared and refilled per call —
        // so sharing one per thread across engines/epochs is sound.)
        thread_local! {
            static SCRATCH: std::cell::RefCell<BatchScratch> =
                std::cell::RefCell::new(BatchScratch::default());
        }
        let mut ws = self.checkout_workspace();
        let ks = vec![k; features.len()];
        let mut out = Vec::with_capacity(features.len());
        SCRATCH.with(|scratch| {
            self.predict_batch_in(&mut ws, &mut scratch.borrow_mut(), features, &ks, &mut out)
        })?;
        Ok(out)
    }

    /// Batched prediction through caller-held workspace and scratch (the
    /// batch server's workers hold both for their lifetime). Pushes one
    /// [`Prediction`] per request onto `out`, in request order; each
    /// request is attributed an equal share of the batch's compute
    /// latency. Every request is validated before any compute, so a
    /// malformed batch is rejected whole with a typed error.
    ///
    /// # Panics
    ///
    /// Panics if `features` and `ks` lengths differ (a caller bug, not a
    /// request property).
    pub(crate) fn predict_batch_in<B: std::borrow::Borrow<SparseVector>>(
        &self,
        ws: &mut slide_core::Workspace,
        scratch: &mut BatchScratch,
        features: &[B],
        ks: &[usize],
        out: &mut Vec<Prediction>,
    ) -> Result<(), ServeError> {
        self.predict_batch_in_with(ws, scratch, features, ks, out, &self.selector)
    }

    /// [`ServingEngine::predict_batch_in`] scoring through an explicit
    /// `selector` (see [`ServingEngine::predict_in_with`]).
    pub(crate) fn predict_batch_in_with<B: std::borrow::Borrow<SparseVector>>(
        &self,
        ws: &mut slide_core::Workspace,
        scratch: &mut BatchScratch,
        features: &[B],
        ks: &[usize],
        out: &mut Vec<Prediction>,
        selector: &InferenceSelector,
    ) -> Result<(), ServeError> {
        assert_eq!(features.len(), ks.len(), "features/ks length mismatch");
        if features.is_empty() {
            return Ok(());
        }
        for (f, &k) in features.iter().zip(ks) {
            self.validate_request(f.borrow(), k)?;
        }
        // A shard engine holds fewer neurons than `total_classes`; its
        // local reduction can only ever keep `output_dim` entries, so
        // clamp the preallocation (the router merges shard lists back up
        // to the requested k).
        let dim = self.network.output_dim();
        let mut topks: Vec<TopK> = ks.iter().map(|&k| TopK::new(k.min(dim))).collect();
        let t0 = Instant::now();
        let report = match &self.quantized {
            Some(q) => self
                .network
                .predict_topk_batch_quantized(selector, ws, scratch, features, &mut topks, q),
            None => self
                .network
                .predict_topk_batch(selector, ws, scratch, features, &mut topks),
        };
        let latency = t0.elapsed() / features.len() as u32;
        let last = self.network.layers().len() - 1;
        let lsh_output = self.network.layers()[last].lsh().is_some();
        for mut topk in topks {
            if self.class_offset != 0 {
                topk.offset_ids(self.class_offset);
            }
            self.record(latency);
            out.push(Prediction { topk, latency });
        }
        if lsh_output && report.dense_examples > 0 {
            self.counters
                .dense_fallbacks
                .fetch_add(report.dense_examples as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    fn record(&self, latency: Duration) {
        let ns = latency.as_nanos() as u64;
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        self.counters
            .total_latency_ns
            .fetch_add(ns, Ordering::Relaxed);
        self.counters
            .max_latency_ns
            .fetch_max(ns, Ordering::Relaxed);
    }

    /// A snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            total_latency_ns: self.counters.total_latency_ns.load(Ordering::Relaxed),
            max_latency_ns: self.counters.max_latency_ns.load(Ordering::Relaxed),
            dense_fallbacks: self.counters.dense_fallbacks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slide_core::config::{LshLayerConfig, NetworkConfig};
    use slide_data::synth::{generate, SyntheticConfig};

    fn tiny_engine(options: ServeOptions) -> (ServingEngine, slide_data::synth::SyntheticData) {
        let data = generate(&SyntheticConfig::tiny().with_seed(4));
        let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
            .hidden(16)
            .output_lsh(LshLayerConfig::simhash(3, 8))
            .seed(5)
            .build()
            .unwrap();
        let network = Network::new(config).unwrap();
        (ServingEngine::new(network, options), data)
    }

    #[test]
    fn predict_returns_k_ranked_classes() {
        let (engine, data) = tiny_engine(ServeOptions::default().with_top_k(3));
        let p = engine.predict(&data.test.examples()[0].features).unwrap();
        assert!(p.topk.len() <= 3);
        assert!(!p.topk.is_empty());
        for w in p.topk.items().windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(p.latency > Duration::ZERO);
    }

    #[test]
    fn out_of_range_features_return_typed_error() {
        let (engine, _) = tiny_engine(ServeOptions::default());
        let dim = engine.input_dim();
        let bad = SparseVector::from_pairs([(dim as u32, 1.0)]);
        match engine.predict(&bad) {
            Err(ServeError::FeatureIndexOutOfRange {
                needed_dim,
                input_dim,
            }) => {
                assert_eq!(needed_dim, dim + 1);
                assert_eq!(input_dim, dim);
            }
            other => panic!("expected FeatureIndexOutOfRange, got {other:?}"),
        }
        // The batch path rejects the whole batch on one bad request.
        let good = SparseVector::from_pairs([(0, 1.0)]);
        assert!(matches!(
            engine.predict_batch(&[good, bad]),
            Err(ServeError::FeatureIndexOutOfRange { .. })
        ));
        // Nothing was counted for rejected requests.
        assert_eq!(engine.stats().requests, 0);
    }

    #[test]
    fn out_of_bounds_k_returns_typed_error() {
        let (engine, data) = tiny_engine(ServeOptions::default());
        let features = &data.test.examples()[0].features;
        assert!(matches!(
            engine.predict_k(features, 0),
            Err(ServeError::InvalidTopK { .. })
        ));
        // The upper bound caps the TopK preallocation: a wire-supplied
        // giant k must be rejected, not allocated.
        match engine.predict_k(features, engine.output_dim() + 1) {
            Err(ServeError::InvalidTopK { k, max }) => {
                assert_eq!(k, engine.output_dim() + 1);
                assert_eq!(max, engine.output_dim());
            }
            other => panic!("expected InvalidTopK, got {other:?}"),
        }
        // k == output_dim is the largest accepted value.
        assert!(engine.predict_k(features, engine.output_dim()).is_ok());
    }

    #[test]
    fn counters_aggregate_across_calls() {
        let (engine, data) = tiny_engine(ServeOptions::default());
        for ex in data.test.iter().take(10) {
            engine.predict(&ex.features).unwrap();
        }
        let s = engine.stats();
        assert_eq!(s.requests, 10);
        assert!(s.total_latency_ns > 0);
        assert!(s.max_latency_ns <= s.total_latency_ns);
        assert!(s.mean_latency() > Duration::ZERO);
    }

    #[test]
    fn snapshot_round_trip_through_engine() {
        let (direct, data) = tiny_engine(ServeOptions::default().with_top_k(1));
        let bytes = direct.network().to_snapshot_bytes();
        let restored =
            ServingEngine::from_snapshot_bytes(&bytes, ServeOptions::default().with_top_k(1))
                .unwrap();
        for ex in data.test.iter().take(20) {
            assert_eq!(
                direct.predict(&ex.features).unwrap().topk.top1(),
                restored.predict(&ex.features).unwrap().topk.top1()
            );
        }
    }

    #[test]
    fn slice_engines_merge_bit_identically_to_the_full_engine() {
        // Scatter-gather's foundation: slice one snapshot into shard
        // engines, fan a request to all of them, merge the globally
        // offset per-shard answers — classes AND score bits must equal
        // the single full engine's. Dense fallback stays off on every
        // engine: the full engine falling back would score neurons no
        // shard retrieves.
        let (direct, data) = tiny_engine(ServeOptions::default());
        let opts = ServeOptions::default()
            .with_top_k(3)
            .with_dense_fallback(false);
        for bytes in [
            direct.network().to_snapshot_bytes(),
            direct.network().to_quantized_snapshot_bytes(),
        ] {
            let full = ServingEngine::from_snapshot_bytes(&bytes, opts).unwrap();
            let slices = slide_core::snapshot::slice_snapshot(&bytes, 3).unwrap();
            let shards: Vec<ServingEngine> = slices
                .iter()
                .map(|s| ServingEngine::from_slice_bytes(s, opts).unwrap())
                .collect();
            let mut offset = 0usize;
            for shard in &shards {
                assert_eq!(shard.class_offset() as usize, offset);
                assert_eq!(shard.total_classes(), full.output_dim());
                assert_eq!(shard.default_top_k(), full.default_top_k());
                offset += shard.output_dim();
            }
            assert_eq!(offset, full.output_dim());
            for ex in data.test.iter().take(20) {
                let want = full.predict(&ex.features).unwrap().topk;
                let mut merged = TopK::new(3);
                for shard in &shards {
                    let p = shard.predict(&ex.features).unwrap();
                    for &(id, score) in p.topk.items() {
                        // Ids already lifted into the global space.
                        assert!((id as usize) < full.output_dim());
                        merged.offer(id, score);
                    }
                }
                merged.finish();
                assert_eq!(merged.to_bits(), want.to_bits());
            }
            // Shards validate k against the FULL width, not their own.
            let f = &data.test.examples()[0].features;
            assert!(shards[0].predict_k(f, full.output_dim()).is_ok());
            assert!(matches!(
                shards[0].predict_k(f, full.output_dim() + 1),
                Err(ServeError::InvalidTopK { .. })
            ));
        }
    }

    #[test]
    fn quantized_snapshot_activates_fused_path() {
        let (direct, data) = tiny_engine(ServeOptions::default().with_top_k(3));
        let qbytes = direct.network().to_quantized_snapshot_bytes();
        let qengine =
            ServingEngine::from_snapshot_bytes(&qbytes, ServeOptions::default().with_top_k(3))
                .unwrap();
        assert!(qengine.quantized_active());
        // f32 snapshots never activate it; neither does opting out.
        let fbytes = direct.network().to_snapshot_bytes();
        let fengine = ServingEngine::from_snapshot_bytes(&fbytes, ServeOptions::default()).unwrap();
        assert!(!fengine.quantized_active());
        let opted_out = ServingEngine::from_snapshot_bytes(
            &qbytes,
            ServeOptions::default().with_use_quantized(false),
        )
        .unwrap();
        assert!(!opted_out.quantized_active());
        // The quantized batch path answers and counts like any other.
        let features: Vec<_> = data
            .test
            .iter()
            .take(8)
            .map(|ex| ex.features.clone())
            .collect();
        let preds = qengine.predict_batch(&features).unwrap();
        assert_eq!(preds.len(), 8);
        assert!(preds.iter().all(|p| !p.topk.is_empty()));
        assert_eq!(qengine.stats().requests, 8);
    }

    #[test]
    fn quantized_and_f32_paths_agree_on_dequantized_weights() {
        // Both engines load the SAME quantized bytes — identical network
        // weights (the dequantized codes) — one scoring through i16, the
        // other through the f32 gather kernels. Scores differ only in
        // floating-point rounding, so rankings must agree essentially
        // everywhere.
        let (direct, data) = tiny_engine(ServeOptions::default().with_top_k(1));
        let qbytes = direct.network().to_quantized_snapshot_bytes();
        let q = ServingEngine::from_snapshot_bytes(&qbytes, ServeOptions::default().with_top_k(1))
            .unwrap();
        let f = ServingEngine::from_snapshot_bytes(
            &qbytes,
            ServeOptions::default()
                .with_top_k(1)
                .with_use_quantized(false),
        )
        .unwrap();
        let features: Vec<_> = data
            .test
            .iter()
            .take(30)
            .map(|ex| ex.features.clone())
            .collect();
        let qp = q.predict_batch(&features).unwrap();
        let fp = f.predict_batch(&features).unwrap();
        let agree = qp
            .iter()
            .zip(&fp)
            .filter(|(a, b)| a.topk.top1() == b.topk.top1())
            .count();
        assert!(
            agree * 10 >= features.len() * 9,
            "{agree}/{}",
            features.len()
        );
    }

    #[test]
    fn single_and_batched_predictions_are_bit_identical() {
        // The cross-connection coalescing front-end relies on this: a
        // single answered alone must equal the same single scored inside
        // an arbitrary micro-batch, down to the score bits, in BOTH the
        // f32 gather path and the fused i16 quantized path.
        let (f32_engine, data) = tiny_engine(ServeOptions::default().with_top_k(3));
        let qbytes = f32_engine.network().to_quantized_snapshot_bytes();
        let q_engine =
            ServingEngine::from_snapshot_bytes(&qbytes, ServeOptions::default().with_top_k(3))
                .unwrap();
        assert!(q_engine.quantized_active());
        let features: Vec<_> = data
            .test
            .iter()
            .take(16)
            .map(|ex| ex.features.clone())
            .collect();
        for engine in [&f32_engine, &q_engine] {
            let batched = engine.predict_batch(&features).unwrap();
            for (f, b) in features.iter().zip(&batched) {
                let single = engine.predict(f).unwrap();
                let s_items = single.topk.items();
                let b_items = b.topk.items();
                assert_eq!(s_items.len(), b_items.len());
                for (s, bb) in s_items.iter().zip(b_items) {
                    assert_eq!(s.0, bb.0, "class mismatch");
                    assert_eq!(s.1.to_bits(), bb.1.to_bits(), "score bits mismatch");
                }
            }
        }
    }

    #[test]
    fn concurrent_predicts_are_safe() {
        let (engine, data) = tiny_engine(ServeOptions::default());
        let engine = std::sync::Arc::new(engine);
        let data = std::sync::Arc::new(data);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let engine = std::sync::Arc::clone(&engine);
                let data = std::sync::Arc::clone(&data);
                std::thread::spawn(move || {
                    for ex in data.test.iter().skip(t * 10).take(10) {
                        let p = engine.predict(&ex.features).unwrap();
                        assert!(!p.topk.is_empty());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(engine.stats().requests, 40);
    }
}
