//! Readiness polling over direct `extern "C"` OS bindings.
//!
//! The event-driven front-end ([`crate::http`]) needs one thing from the
//! OS: "tell me which of these sockets are readable/writable". The build
//! environment has no `libc` crate (same constraint as the `mmap(2)`
//! binding in `slide-data`), so this module binds the syscalls directly:
//!
//! * on Linux, `epoll_create1`/`epoll_ctl`/`epoll_wait` — O(ready)
//!   wakeups, the backend that carries the 10K-connection target;
//! * on other unix, POSIX `poll(2)` — O(registered) per wait, but
//!   portable. The poll backend also compiles (and is tested) on Linux,
//!   so the fallback cannot silently bitrot.
//!
//! Both backends are **level-triggered**: an event keeps firing while
//! the condition holds, so the owner may leave bytes unread without
//! losing the wakeup. A [`Waker`] lets other threads (the acceptor, the
//! batch workers' completion callbacks) interrupt a blocked
//! [`Poller::wait`] through a socketpair.
//!
//! On non-unix targets the module degrades gracefully: the types exist,
//! [`Poller::new`] returns [`std::io::ErrorKind::Unsupported`], and the
//! HTTP server surfaces that error at bind time.

#[cfg(unix)]
pub use imp::{raise_nofile_limit, raw_fd, Poller, WakeReceiver, Waker};

#[cfg(not(unix))]
pub use stub::{raise_nofile_limit, raw_fd, Poller, WakeReceiver, Waker};

/// One readiness notification from [`Poller::wait`].
///
/// Errors and hangups are folded into `readable`: the owner's next read
/// observes the EOF/error directly, which keeps the state machine in one
/// place instead of duplicating the close path per flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// The descriptor is readable (or at EOF / in error).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
}

#[cfg(unix)]
mod imp {
    use super::Event;
    use std::io::{self, Read, Write};
    use std::net::TcpStream;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::os::raw::c_int;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    /// The raw descriptor of a stream, for [`Poller`] registration.
    pub fn raw_fd(stream: &TcpStream) -> RawFd {
        stream.as_raw_fd()
    }

    // -----------------------------------------------------------------
    // epoll(7) — Linux only.

    #[cfg(target_os = "linux")]
    mod ep {
        use std::os::raw::c_int;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x1;
        pub const EPOLLOUT: u32 = 0x4;
        pub const EPOLLERR: u32 = 0x8;
        pub const EPOLLHUP: u32 = 0x10;

        // The kernel ABI packs epoll_event on x86-64 (and only there),
        // so the u64 payload sits at offset 4.
        #[cfg(target_arch = "x86_64")]
        #[repr(C, packed)]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        #[cfg(not(target_arch = "x86_64"))]
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }
    }

    #[cfg(target_os = "linux")]
    struct EpollBackend {
        /// The epoll instance; `OwnedFd` closes it on drop.
        epfd: OwnedFd,
        buf: Vec<ep::EpollEvent>,
    }

    #[cfg(target_os = "linux")]
    impl EpollBackend {
        fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers.
            let fd = unsafe { ep::epoll_create1(ep::EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                // SAFETY: fd was just returned by epoll_create1 and is
                // owned by nobody else.
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
                buf: vec![ep::EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            let mut ev = ep::EpollEvent {
                events: (if read { ep::EPOLLIN } else { 0 })
                    | (if write { ep::EPOLLOUT } else { 0 }),
                data: token,
            };
            // SAFETY: epfd and fd are live descriptors; ev outlives the
            // call.
            let rc = unsafe { ep::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let millis = timeout_millis(timeout);
            // SAFETY: buf holds buf.len() valid events for the kernel to
            // fill.
            let n = unsafe {
                ep::epoll_wait(
                    self.epfd.as_raw_fd(),
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    millis,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (ep::EPOLLIN | ep::EPOLLERR | ep::EPOLLHUP) != 0,
                    writable: bits & (ep::EPOLLOUT | ep::EPOLLERR | ep::EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    // -----------------------------------------------------------------
    // poll(2) — POSIX, compiled everywhere unix so it cannot bitrot.

    mod pl {
        use std::os::raw::{c_int, c_short};

        pub const POLLIN: c_short = 0x1;
        pub const POLLOUT: c_short = 0x4;
        pub const POLLERR: c_short = 0x8;
        pub const POLLHUP: c_short = 0x10;
        pub const POLLNVAL: c_short = 0x20;

        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct PollFd {
            pub fd: c_int,
            pub events: c_short,
            pub revents: c_short,
        }

        // nfds_t is `unsigned long` on Linux, `unsigned int` on the BSDs
        // and macOS.
        #[cfg(target_os = "linux")]
        pub type NFds = std::os::raw::c_ulong;
        #[cfg(not(target_os = "linux"))]
        pub type NFds = std::os::raw::c_uint;

        extern "C" {
            pub fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
        }
    }

    struct PollRegistration {
        fd: RawFd,
        token: u64,
        read: bool,
        write: bool,
    }

    struct PollBackend {
        regs: Vec<PollRegistration>,
        buf: Vec<pl::PollFd>,
    }

    impl PollBackend {
        fn new() -> Self {
            Self {
                regs: Vec::new(),
                buf: Vec::new(),
            }
        }

        fn find(&self, fd: RawFd) -> Option<usize> {
            self.regs.iter().position(|r| r.fd == fd)
        }

        fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            self.buf.clear();
            for r in &self.regs {
                self.buf.push(pl::PollFd {
                    fd: r.fd,
                    events: (if r.read { pl::POLLIN } else { 0 })
                        | (if r.write { pl::POLLOUT } else { 0 }),
                    revents: 0,
                });
            }
            let millis = timeout_millis(timeout);
            // SAFETY: buf holds buf.len() valid pollfds.
            let n = unsafe { pl::poll(self.buf.as_mut_ptr(), self.buf.len() as pl::NFds, millis) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (r, p) in self.regs.iter().zip(&self.buf) {
                let bits = p.revents;
                if bits == 0 {
                    continue;
                }
                let broken = bits & (pl::POLLERR | pl::POLLHUP | pl::POLLNVAL) != 0;
                out.push(Event {
                    token: r.token,
                    readable: bits & pl::POLLIN != 0 || broken,
                    writable: bits & pl::POLLOUT != 0 || broken,
                });
            }
            Ok(())
        }
    }

    enum Backend {
        #[cfg(target_os = "linux")]
        Epoll(EpollBackend),
        Poll(PollBackend),
    }

    /// A readiness poller owned by one event-loop thread.
    ///
    /// Registration methods take `&mut self`: the poller is not a shared
    /// object — cross-thread wakeups go through a [`Waker`], never
    /// through concurrent registration.
    pub struct Poller {
        backend: Backend,
    }

    impl std::fmt::Debug for Poller {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let name = match self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(_) => "epoll",
                Backend::Poll(_) => "poll",
            };
            f.debug_struct("Poller").field("backend", &name).finish()
        }
    }

    impl Poller {
        /// Opens the platform's best backend (epoll on Linux, poll(2)
        /// elsewhere).
        ///
        /// # Errors
        ///
        /// Returns the `epoll_create1` error.
        pub fn new() -> io::Result<Self> {
            #[cfg(target_os = "linux")]
            {
                Ok(Self {
                    backend: Backend::Epoll(EpollBackend::new()?),
                })
            }
            #[cfg(not(target_os = "linux"))]
            {
                Ok(Self {
                    backend: Backend::Poll(PollBackend::new()),
                })
            }
        }

        /// Opens the portable poll(2) backend explicitly — exists so the
        /// fallback stays under test on Linux.
        pub fn with_poll_backend() -> Self {
            Self {
                backend: Backend::Poll(PollBackend::new()),
            }
        }

        /// Starts watching `fd` under `token` for the given interests.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` error (the poll backend only fails on
        /// a duplicate registration).
        pub fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            match &mut self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(b) => b.ctl(ep::EPOLL_CTL_ADD, fd, token, read, write),
                Backend::Poll(b) => {
                    if b.find(fd).is_some() {
                        return Err(io::Error::new(
                            io::ErrorKind::AlreadyExists,
                            "fd already registered",
                        ));
                    }
                    b.regs.push(PollRegistration {
                        fd,
                        token,
                        read,
                        write,
                    });
                    Ok(())
                }
            }
        }

        /// Changes the interests (and token) of a registered `fd`.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` error, or `NotFound` from the poll
        /// backend.
        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            match &mut self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(b) => b.ctl(ep::EPOLL_CTL_MOD, fd, token, read, write),
                Backend::Poll(b) => {
                    let i = b.find(fd).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::NotFound, "fd not registered")
                    })?;
                    b.regs[i] = PollRegistration {
                        fd,
                        token,
                        read,
                        write,
                    };
                    Ok(())
                }
            }
        }

        /// Stops watching `fd`. Must be called before the descriptor is
        /// closed (epoll would otherwise keep a kernel-side reference).
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` error, or `NotFound` from the poll
        /// backend.
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            match &mut self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(b) => b.ctl(ep::EPOLL_CTL_DEL, fd, 0, false, false),
                Backend::Poll(b) => {
                    let i = b.find(fd).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::NotFound, "fd not registered")
                    })?;
                    b.regs.swap_remove(i);
                    Ok(())
                }
            }
        }

        /// Blocks until at least one registered descriptor is ready or
        /// `timeout` passes (`None` blocks indefinitely), appending the
        /// ready set to `out`. A signal interruption returns normally
        /// with no events.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_wait`/`poll` error.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            match &mut self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll(b) => b.wait(out, timeout),
                Backend::Poll(b) => b.wait(out, timeout),
            }
        }
    }

    fn timeout_millis(timeout: Option<Duration>) -> c_int {
        match timeout {
            // Round up so a 100µs timeout polls for 1ms instead of
            // busy-spinning at 0.
            Some(t) => c_int::try_from(
                t.as_millis()
                    .max(u128::from(t.subsec_nanos() % 1_000_000 != 0)),
            )
            .unwrap_or(c_int::MAX),
            None => -1,
        }
    }

    // -----------------------------------------------------------------
    // Cross-thread wakeup.

    /// The sending half of a wakeup channel: any thread may call
    /// [`Waker::wake`] to make the owning event loop's [`Poller::wait`]
    /// return.
    pub struct Waker {
        tx: UnixStream,
    }

    impl std::fmt::Debug for Waker {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Waker").finish()
        }
    }

    impl Waker {
        /// Creates a connected waker pair; register the receiver's fd in
        /// the poller and drain it when its token fires.
        ///
        /// # Errors
        ///
        /// Returns the socketpair error.
        pub fn pair() -> io::Result<(Waker, WakeReceiver)> {
            let (tx, rx) = UnixStream::pair()?;
            // Nonblocking on both ends: a full buffer just means a
            // wakeup is already pending, and the drain must not block
            // the loop.
            tx.set_nonblocking(true)?;
            rx.set_nonblocking(true)?;
            Ok((Waker { tx }, WakeReceiver { rx }))
        }

        /// Makes the paired receiver's poller readable. Idempotent while
        /// a wakeup is pending; never blocks.
        pub fn wake(&self) {
            // WouldBlock means the buffer already holds unread wakeup
            // bytes — the loop is waking regardless.
            let _ = (&self.tx).write(&[1]);
        }
    }

    /// The receiving half of a wakeup channel, owned by the event loop.
    pub struct WakeReceiver {
        rx: UnixStream,
    }

    impl std::fmt::Debug for WakeReceiver {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("WakeReceiver").finish()
        }
    }

    impl WakeReceiver {
        /// The descriptor to register in the poller.
        pub fn fd(&self) -> RawFd {
            self.rx.as_raw_fd()
        }

        /// Consumes all pending wakeup bytes (call when the token fires).
        pub fn drain(&self) {
            let mut sink = [0u8; 64];
            while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
        }
    }

    // -----------------------------------------------------------------
    // File-descriptor budget.

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(target_os = "linux"))]
    const RLIMIT_NOFILE: c_int = 8;

    extern "C" {
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    /// Raises the process's open-file limit toward `want` descriptors
    /// and returns the soft limit actually in effect afterwards. The
    /// hard limit is raised too when the process has the privilege
    /// (root); otherwise the soft limit is clamped to the hard limit.
    /// Best-effort by design — a 10K-connection drill calls this first
    /// and then trusts the returned budget, not the request.
    ///
    /// # Errors
    ///
    /// Returns the `getrlimit` error; `setrlimit` refusals degrade to
    /// the clamped limit instead of failing.
    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: lim outlives the call.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur >= want {
            return Ok(lim.cur);
        }
        if lim.max < want {
            // Raising the hard limit needs privilege; try, keep the old
            // ceiling if refused.
            let bumped = RLimit {
                cur: want,
                max: want,
            };
            // SAFETY: bumped outlives the call.
            if unsafe { setrlimit(RLIMIT_NOFILE, &bumped) } == 0 {
                return Ok(want);
            }
        }
        let clamped = RLimit {
            cur: want.min(lim.max),
            max: lim.max,
        };
        // SAFETY: clamped outlives the call.
        if unsafe { setrlimit(RLIMIT_NOFILE, &clamped) } != 0 {
            return Ok(lim.cur);
        }
        Ok(clamped.cur)
    }
}

#[cfg(not(unix))]
mod stub {
    use super::Event;
    use std::io;
    use std::net::TcpStream;
    use std::time::Duration;

    /// Raw descriptor placeholder on targets without readiness polling.
    pub fn raw_fd(_stream: &TcpStream) -> i32 {
        -1
    }

    /// Unsupported-target placeholder; [`Poller::new`] always fails.
    #[derive(Debug)]
    pub struct Poller;

    impl Poller {
        /// Always fails on non-unix targets.
        ///
        /// # Errors
        ///
        /// Returns [`io::ErrorKind::Unsupported`].
        pub fn new() -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness polling requires a unix target",
            ))
        }

        /// See [`Poller::new`]; unreachable on non-unix targets.
        pub fn with_poll_backend() -> Self {
            Self
        }

        /// Unsupported.
        ///
        /// # Errors
        ///
        /// Returns [`io::ErrorKind::Unsupported`].
        pub fn register(
            &mut self,
            _fd: i32,
            _token: u64,
            _read: bool,
            _write: bool,
        ) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        /// Unsupported.
        ///
        /// # Errors
        ///
        /// Returns [`io::ErrorKind::Unsupported`].
        pub fn modify(
            &mut self,
            _fd: i32,
            _token: u64,
            _read: bool,
            _write: bool,
        ) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        /// Unsupported.
        ///
        /// # Errors
        ///
        /// Returns [`io::ErrorKind::Unsupported`].
        pub fn deregister(&mut self, _fd: i32) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        /// Unsupported.
        ///
        /// # Errors
        ///
        /// Returns [`io::ErrorKind::Unsupported`].
        pub fn wait(
            &mut self,
            _out: &mut Vec<Event>,
            _timeout: Option<Duration>,
        ) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }
    }

    /// No-op waker for unsupported targets.
    #[derive(Debug)]
    pub struct Waker;

    /// No-op wake receiver for unsupported targets.
    #[derive(Debug)]
    pub struct WakeReceiver;

    impl Waker {
        /// Creates a disconnected no-op pair.
        ///
        /// # Errors
        ///
        /// Never fails (the pair just does nothing).
        pub fn pair() -> io::Result<(Waker, WakeReceiver)> {
            Ok((Waker, WakeReceiver))
        }

        /// No-op.
        pub fn wake(&self) {}
    }

    impl WakeReceiver {
        /// Placeholder descriptor.
        pub fn fd(&self) -> i32 {
            -1
        }

        /// No-op.
        pub fn drain(&self) {}
    }

    /// No-op on targets without `setrlimit`; reports `want` as granted.
    ///
    /// # Errors
    ///
    /// Never fails.
    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        Ok(want)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn pollers() -> Vec<Poller> {
        vec![Poller::new().unwrap(), Poller::with_poll_backend()]
    }

    #[test]
    fn readiness_tracks_data_and_interest_changes() {
        for mut poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (mut rx, _) = listener.accept().unwrap();
            rx.set_nonblocking(true).unwrap();

            poller.register(raw_fd(&rx), 7, true, false).unwrap();
            let mut events = Vec::new();

            // Nothing to read yet: a short wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|e| e.token != 7 || !e.readable));

            tx.write_all(b"ping").unwrap();
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let ev = events
                .iter()
                .find(|e| e.token == 7)
                .expect("readable event");
            assert!(ev.readable);

            // Level-triggered: unread data keeps firing.
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));

            // Drain, then switch to write interest: a fresh socket's
            // buffer has room, so writable fires immediately.
            let mut sink = [0u8; 16];
            let _ = rx.read(&mut sink);
            poller.modify(raw_fd(&rx), 7, false, true).unwrap();
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.writable));

            poller.deregister(raw_fd(&rx)).unwrap();
            tx.write_all(b"more").unwrap();
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert!(events.iter().all(|e| e.token != 7));
        }
    }

    #[test]
    fn peer_close_reports_readable() {
        for mut poller in pollers() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (rx, _) = listener.accept().unwrap();
            poller.register(raw_fd(&rx), 3, true, false).unwrap();
            drop(tx);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            // EOF (and on some backends HUP) must surface as readable so
            // the owner's read observes the close.
            assert!(events.iter().any(|e| e.token == 3 && e.readable));
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        for mut poller in pollers() {
            let (waker, receiver) = Waker::pair().unwrap();
            poller.register(receiver.fd(), 0, true, false).unwrap();

            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                waker.wake();
                waker.wake(); // idempotent while pending
                waker // keep the write end open past the join
            });
            let mut events = Vec::new();
            let t0 = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(t0.elapsed() < Duration::from_secs(5));
            assert!(events.iter().any(|e| e.token == 0 && e.readable));
            // Join first (a drain racing the second wake() would leave a
            // byte behind) and keep the waker alive (dropping it closes
            // the pair, which reads as a permanent HUP).
            let _waker = t.join().unwrap();
            receiver.drain();

            // Drained: the next wait times out quietly.
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.iter().all(|e| e.token != 0 || !e.readable));
        }
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        // Asking for a tiny budget returns at least that budget (the
        // current limit is never lowered).
        let before = raise_nofile_limit(64).unwrap();
        assert!(before >= 64);
        let again = raise_nofile_limit(64).unwrap();
        assert!(again >= before.min(64));
    }
}
