//! # slide-kernels
//!
//! Numeric kernels for the SLIDE reproduction, in two flavours selected by
//! [`KernelMode`]:
//!
//! * [`KernelMode::Scalar`] — straightforward element-at-a-time loops, the
//!   "plain SLIDE" of the paper's Figure 10;
//! * [`KernelMode::Vectorized`] — 8-lane unrolled loops written so the
//!   compiler's auto-vectorizer emits SIMD, standing in for the paper's
//!   hand-written Intel AVX kernels (§5.4, Appendix D), plus explicit
//!   x86 prefetch hints where available (the paper's software pipelining).
//!
//! The [`aligned`] module provides cache-line-aligned, padded allocations
//! — the paper's fix for false sharing between OpenMP threads
//! ("carefully allocating data structures and aligning them on cache line
//! boundaries"; Appendix D).
//!
//! The [`fused`] module holds the slice-based hot-path kernels that
//! operate directly on HOGWILD `&[AtomicU32]` rows: [`gather_dot`]
//! (forward pre-activation), [`gather_dot_batch`] (batched serving) and
//! [`adam_step_gather`] (backward's fused gather + error-signal + Adam
//! sweep).
//!
//! The [`hash`] module holds the blocked signed-projection kernel behind
//! SimHash-style LSH families ([`SignedPlanes`]), and [`quant`] the fused
//! dequantize-dot kernels for i16 fixed-point serving rows
//! ([`gather_dot_q16`], [`dot_batch_q16`]).

pub mod aligned;
pub mod fused;
pub mod hash;
pub mod ops;
pub mod quant;

pub use aligned::{AlignedVec, CachePadded, CACHE_LINE_BYTES};
pub use fused::{adam_step_gather, gather_dot, gather_dot_batch};
pub use hash::{SignedPlanes, SignedPlanesBuilder};
pub use ops::{
    adam_step, axpy, dispatched_isa, dot, relu_in_place, softmax_in_place, AdamParams, KernelMode,
};
pub use quant::{dot_batch_q16, gather_dot_q16, quantize_row};
