//! Fused slice-based kernels over HOGWILD parameter rows.
//!
//! The engine's hot path used to walk shared weights one element at a
//! time through bounds-checked flat-index accessors; these kernels take
//! whole rows instead and make one pass per row.
//!
//! # The bit-level HOGWILD slice protocol
//!
//! The kernels operate on `&[AtomicU32]` row slices whose cells follow
//! one convention:
//!
//! * every cell holds an `f32` bit pattern (`f32::to_bits`);
//! * a **scalar** access is a relaxed atomic load reinterpreted with
//!   `f32::from_bits` ([`read`]) or `f32::to_bits` stored relaxed
//!   ([`write()`]);
//! * no read-modify-write is atomic: concurrent updates to the same cell
//!   may lose one of them — the HOGWILD tolerance (paper §3.1) the
//!   storage layer documents;
//! * the **vectorized** kernels reinterpret the cells as plain `f32`
//!   data (each lane of a SIMD load/store is the same whole-word,
//!   4-byte-aligned machine access a relaxed atomic `mov` performs, so
//!   lanes never tear on any supported target). Racing lanes can drop an
//!   update exactly like racing scalar stores — the same tolerance, now
//!   eight lanes at a time. This mirrors the reference implementation's
//!   unsynchronized `float*` arithmetic, and shedding the per-element
//!   atomic ops is what lets the compiler (and the explicit AVX2/FMA
//!   paths below, dispatched at runtime) emit real SIMD: per-element
//!   atomic loads pin the loop to scalar code.
//!
//! `KernelMode::Scalar` is always the strict sequential loop over
//! per-element atomic accesses — the bit-reproducible reference that
//! `tests/equivalence.rs` pins.
//!
//! Three fused ops cover the training/inference hot loops:
//!
//! * [`gather_dot`] — `init + Σᵢ row[ids[i]]·vals[i]`, the per-neuron
//!   pre-activation for sparse inputs (forward pass, candidate scoring);
//! * [`gather_dot_batch`] — one weight row scored against several
//!   examples that share an id list, loading each weight once per
//!   register block (batched serving);
//! * [`adam_step_gather`] — backward's per-`(neuron, prev-active)` loop
//!   fused into one pass: load `w/m/v` once per id, accumulate the
//!   back-propagated error signal through the pre-update weight, apply
//!   the Adam step, store once.
//!
//! All vectorized entry points validate every id against the row length
//! **before** touching memory (one auto-vectorizable integer pass that
//! also detects the dense-identity id list `0, 1, 2, …`, the common case
//! on hidden-to-output edges, which unlocks the contiguous SIMD paths).

use std::sync::atomic::{AtomicU32, Ordering};

use crate::ops::{adam_step, prefetch_read, AdamParams, KernelMode};

/// Reads one cell of a HOGWILD slice: relaxed load + `from_bits`.
#[inline(always)]
pub fn read(cell: &AtomicU32) -> f32 {
    f32::from_bits(cell.load(Ordering::Relaxed))
}

/// Writes one cell of a HOGWILD slice: `to_bits` + relaxed store.
#[inline(always)]
pub fn write(cell: &AtomicU32, value: f32) {
    cell.store(value.to_bits(), Ordering::Relaxed);
}

/// Validates that every id indexes below `limit` and reports whether the
/// id list is the dense identity `0, 1, …, ids.len()-1` (one pass,
/// auto-vectorizable integer reductions).
///
/// # Panics
///
/// Panics if any id is out of bounds.
#[inline]
fn validate_ids(ids: &[u32], limit: usize) -> bool {
    let n = ids.len();
    if n == 0 {
        return true;
    }
    // Cheap endpoint pre-test, then a branch-free xor-fold the compiler
    // vectorizes; a confirmed identity needs only the O(1) length check.
    if ids[0] == 0 && ids[n - 1] == (n - 1) as u32 {
        let mut acc = 0u32;
        for (i, &id) in ids.iter().enumerate() {
            acc |= id ^ i as u32;
        }
        if acc == 0 {
            assert!(n <= limit, "gather id out of bounds: {} >= {limit}", n - 1);
            return true;
        }
    }
    let mut max = 0u32;
    for &id in ids {
        max = max.max(id);
    }
    assert!(
        (max as usize) < limit,
        "gather id out of bounds: {max} >= {limit}"
    );
    false
}

/// The vectorized kernels' raw view of a row (see the module-level
/// protocol): the pointer is read and written with plain `f32` ops.
#[inline(always)]
fn raw(cells: &[AtomicU32]) -> *mut f32 {
    // AtomicU32 has interior mutability, so writing through a pointer
    // derived from a shared slice is permitted.
    cells.as_ptr() as *mut f32
}

#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn have_avx2_fma() -> bool {
    // `is_x86_feature_detected!` caches in an atomic; steady-state cost
    // is one relaxed load per call.
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Fused sparse dot against one parameter row:
/// `init + Σᵢ row[ids[i]] · vals[i]`.
///
/// `init` seeds the accumulator (the neuron's bias), so the `Scalar` mode
/// reproduces the strict sequential accumulation
/// `((init + w₀v₀) + w₁v₁) + …` bit-for-bit — the order
/// `tests/equivalence.rs` pins. `Vectorized` validates the ids up front,
/// then runs 8-lane blocks: contiguous FMA over dense-identity ids,
/// hardware `vgatherdps` (AVX2) or an unrolled raw gather otherwise;
/// for fewer than 8 ids it degrades to the sequential tail and agrees
/// with `Scalar` exactly.
///
/// Duplicate ids are fine (reads only).
///
/// # Panics
///
/// Panics if `ids` and `vals` lengths differ or an id indexes past the
/// row.
pub fn gather_dot(
    row: &[AtomicU32],
    ids: &[u32],
    vals: &[f32],
    init: f32,
    mode: KernelMode,
) -> f32 {
    assert_eq!(ids.len(), vals.len(), "gather_dot: length mismatch");
    match mode {
        KernelMode::Scalar => {
            let mut z = init;
            for (&id, &v) in ids.iter().zip(vals) {
                z += read(&row[id as usize]) * v;
            }
            z
        }
        KernelMode::Vectorized => {
            let identity = validate_ids(ids, row.len());
            let n = ids.len();
            let rp = raw(row) as *const f32;

            #[cfg(target_arch = "x86_64")]
            if n >= 16 && have_avx2_fma() {
                // SAFETY: ids validated above; AVX2+FMA presence checked.
                return init + unsafe { avx::gather_dot(rp, ids, vals, identity) };
            }

            // Portable fallback: 8 independent accumulators (ILP) over
            // the raw view, bounds already validated.
            let mut acc = [0.0f32; 8];
            let chunks = n / 8;
            if identity {
                for c in 0..chunks {
                    let i = c * 8;
                    for lane in 0..8 {
                        // SAFETY: identity ids => i + lane < n <= row.len().
                        acc[lane] += unsafe { *rp.add(i + lane) } * vals[i + lane];
                    }
                }
            } else {
                for c in 0..chunks {
                    let i = c * 8;
                    if i + 15 < n {
                        prefetch_read(rp.wrapping_add(ids[i + 8] as usize));
                        prefetch_read(rp.wrapping_add(ids[i + 15] as usize));
                    }
                    for lane in 0..8 {
                        // SAFETY: all ids validated against row.len().
                        acc[lane] += unsafe { *rp.add(ids[i + lane] as usize) } * vals[i + lane];
                    }
                }
            }
            let mut z = init + acc.iter().sum::<f32>();
            for i in chunks * 8..n {
                // SAFETY: ids validated against row.len().
                z += unsafe { *rp.add(ids[i] as usize) } * vals[i];
            }
            z
        }
    }
}

/// Scores **one** parameter row against several examples that share an id
/// list: `out[e] = init + Σᵢ row[ids[i]] · vals[e·ids.len() + i]`.
///
/// `vals` is example-major: example `e`'s values for `ids` occupy
/// `vals[e * ids.len() .. (e + 1) * ids.len()]`. This is the batched
/// serving kernel — with `B` queued requests, a candidate neuron's row is
/// loaded once per register block and reused across examples instead of
/// re-gathered `B` times.
///
/// `Scalar` runs [`gather_dot`] per example (the reference); `Vectorized`
/// blocks examples four at a time over shared row loads.
///
/// # Panics
///
/// Panics if `vals.len() != ids.len() * out.len()` or an id indexes past
/// the row.
pub fn gather_dot_batch(
    row: &[AtomicU32],
    ids: &[u32],
    vals: &[f32],
    init: f32,
    out: &mut [f32],
    mode: KernelMode,
) {
    assert_eq!(
        vals.len(),
        ids.len() * out.len(),
        "gather_dot_batch: vals must hold ids.len() values per example"
    );
    let n = ids.len();
    match mode {
        KernelMode::Scalar => {
            for (e, o) in out.iter_mut().enumerate() {
                *o = gather_dot(
                    row,
                    ids,
                    &vals[e * n..(e + 1) * n],
                    init,
                    KernelMode::Scalar,
                );
            }
        }
        KernelMode::Vectorized => {
            let identity = validate_ids(ids, row.len());
            let rp = raw(row) as *const f32;

            #[cfg(target_arch = "x86_64")]
            if identity && n >= 16 && have_avx2_fma() {
                // SAFETY: identity ids validated; AVX2+FMA checked.
                unsafe { avx::dot_batch(rp, n, vals, init, out) };
                return;
            }

            for o in out.iter_mut() {
                *o = init;
            }
            let chunks = n / 4;
            for c in 0..chunks {
                let i = c * 4;
                // SAFETY: ids validated against row.len().
                let w = unsafe {
                    [
                        *rp.add(ids[i] as usize),
                        *rp.add(ids[i + 1] as usize),
                        *rp.add(ids[i + 2] as usize),
                        *rp.add(ids[i + 3] as usize),
                    ]
                };
                for (e, o) in out.iter_mut().enumerate() {
                    let ex = &vals[e * n + i..e * n + i + 4];
                    *o += w[0] * ex[0] + w[1] * ex[1] + w[2] * ex[2] + w[3] * ex[3];
                }
            }
            for i in chunks * 4..n {
                // SAFETY: ids validated against row.len().
                let w = unsafe { *rp.add(ids[i] as usize) };
                for (e, o) in out.iter_mut().enumerate() {
                    *o += w * vals[e * n + i];
                }
            }
        }
    }
}

/// Fused HOGWILD Adam update of one neuron's row over the prev-active
/// ids, replacing backward's per-pair accessor loop with a single sweep.
///
/// For each `i`, with `idx = ids[i]`:
///
/// 1. load the **pre-update** weight `w[idx]` once;
/// 2. if `prev_delta` is given, accumulate the back-propagated error
///    signal `prev_delta[i] += delta · w_old` (the message the previous
///    layer receives, computed through the weight *before* this step);
/// 3. apply one Adam step with gradient `g = delta · vals[i]` to
///    `(w[idx], m[idx], v[idx])` and store each exactly once.
///
/// `Scalar` is the strict sequential loop (bit-identical to the old
/// per-pair `update_weight` path single-threaded). `Vectorized` uses the
/// same per-element arithmetic — on dense-identity ids as 8-lane AVX2
/// blocks whose `mul/add/sqrt/div` sequence mirrors the scalar ops
/// exactly, otherwise as an unrolled gather — so for **unique** ids the
/// two modes agree bit-for-bit. A duplicated id inside one unrolled block
/// may read a stale weight in `Vectorized` mode — the same lost-update
/// tolerance HOGWILD already grants concurrent threads. The engine's id
/// lists (active sets, sparse-feature indices) are unique by
/// construction.
///
/// # Panics
///
/// Panics if `ids`/`vals` (and `prev_delta` when given) lengths differ or
/// an id indexes past the row slices.
#[allow(clippy::too_many_arguments)]
pub fn adam_step_gather(
    w: &[AtomicU32],
    m: &[AtomicU32],
    v: &[AtomicU32],
    ids: &[u32],
    vals: &[f32],
    delta: f32,
    mut prev_delta: Option<&mut [f32]>,
    adam: &AdamParams,
    clr: f32,
    mode: KernelMode,
) {
    assert_eq!(ids.len(), vals.len(), "adam_step_gather: length mismatch");
    if let Some(pd) = prev_delta.as_deref() {
        assert_eq!(
            pd.len(),
            ids.len(),
            "adam_step_gather: prev_delta length mismatch"
        );
    }
    match mode {
        KernelMode::Scalar => {
            for (i, (&id, &val)) in ids.iter().zip(vals).enumerate() {
                let idx = id as usize;
                let w_old = read(&w[idx]);
                if let Some(pd) = prev_delta.as_deref_mut() {
                    pd[i] += delta * w_old;
                }
                let (w2, m2, v2) =
                    adam_step(w_old, read(&m[idx]), read(&v[idx]), delta * val, adam, clr);
                write(&w[idx], w2);
                write(&m[idx], m2);
                write(&v[idx], v2);
            }
        }
        KernelMode::Vectorized => {
            let limit = w.len().min(m.len()).min(v.len());
            let identity = validate_ids(ids, limit);
            let n = ids.len();
            let (wp, mp, vp) = (raw(w), raw(m), raw(v));

            #[cfg(target_arch = "x86_64")]
            if identity && n >= 8 && have_avx2_fma() {
                // SAFETY: identity ids validated against all three rows;
                // AVX2 presence checked (the block uses no FMA so its
                // arithmetic matches Scalar bit-for-bit).
                unsafe {
                    avx::adam_contiguous(wp, mp, vp, vals, delta, prev_delta, adam, clr);
                }
                return;
            }
            let _ = identity;

            let chunks = n / 4;
            for c in 0..chunks {
                let i = c * 4;
                if i + 4 < n {
                    let nid = ids[i + 4] as usize;
                    prefetch_read(wp.wrapping_add(nid));
                    prefetch_read(mp.wrapping_add(nid));
                    prefetch_read(vp.wrapping_add(nid));
                }
                let idx = [
                    ids[i] as usize,
                    ids[i + 1] as usize,
                    ids[i + 2] as usize,
                    ids[i + 3] as usize,
                ];
                // Batch the weight loads so the error-signal accumulation
                // and the Adam math run on independent registers.
                // SAFETY: ids validated against every row's length.
                let w_old = unsafe {
                    [
                        *wp.add(idx[0]),
                        *wp.add(idx[1]),
                        *wp.add(idx[2]),
                        *wp.add(idx[3]),
                    ]
                };
                if let Some(pd) = prev_delta.as_deref_mut() {
                    for lane in 0..4 {
                        pd[i + lane] += delta * w_old[lane];
                    }
                }
                for lane in 0..4 {
                    let j = idx[lane];
                    // SAFETY: ids validated against every row's length.
                    unsafe {
                        let (w2, m2, v2) = adam_step(
                            w_old[lane],
                            *mp.add(j),
                            *vp.add(j),
                            delta * vals[i + lane],
                            adam,
                            clr,
                        );
                        *wp.add(j) = w2;
                        *mp.add(j) = m2;
                        *vp.add(j) = v2;
                    }
                }
            }
            for i in chunks * 4..n {
                let idx = ids[i] as usize;
                // SAFETY: ids validated against every row's length.
                unsafe {
                    let w_old = *wp.add(idx);
                    if let Some(pd) = prev_delta.as_deref_mut() {
                        pd[i] += delta * w_old;
                    }
                    let (w2, m2, v2) = adam_step(
                        w_old,
                        *mp.add(idx),
                        *vp.add(idx),
                        delta * vals[i],
                        adam,
                        clr,
                    );
                    *wp.add(idx) = w2;
                    *mp.add(idx) = m2;
                    *vp.add(idx) = v2;
                }
            }
        }
    }
}

/// Runtime-dispatched AVX2/FMA implementations (x86-64 only) — the
/// stand-in for the paper's hand-written Intel AVX kernels (§5.4,
/// Appendix D). Callers check `have_avx2_fma()` and validate ids first.
#[cfg(target_arch = "x86_64")]
mod avx {
    use std::arch::x86_64::*;

    use crate::ops::AdamParams;

    /// Horizontal sum of a 256-bit accumulator.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (register-only shuffles, touches no memory).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(acc: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(acc, 1);
        let lo = _mm256_castps256_ps128(acc);
        let q = _mm_add_ps(lo, hi);
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let s = _mm_add_ss(d, _mm_shuffle_ps(d, d, 0b01));
        _mm_cvtss_f32(s)
    }

    /// `Σᵢ row[ids[i]]·vals[i]` — contiguous FMA when `identity`,
    /// hardware gather otherwise.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; every id must index below the row length;
    /// `ids.len() == vals.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gather_dot(rp: *const f32, ids: &[u32], vals: &[f32], identity: bool) -> f32 {
        let n = ids.len();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let chunks = n / 16;
        if identity {
            for c in 0..chunks {
                let i = c * 16;
                acc0 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(rp.add(i)),
                    _mm256_loadu_ps(vals.as_ptr().add(i)),
                    acc0,
                );
                acc1 = _mm256_fmadd_ps(
                    _mm256_loadu_ps(rp.add(i + 8)),
                    _mm256_loadu_ps(vals.as_ptr().add(i + 8)),
                    acc1,
                );
            }
        } else {
            for c in 0..chunks {
                let i = c * 16;
                let idx0 = _mm256_loadu_si256(ids.as_ptr().add(i) as *const __m256i);
                let idx1 = _mm256_loadu_si256(ids.as_ptr().add(i + 8) as *const __m256i);
                acc0 = _mm256_fmadd_ps(
                    _mm256_i32gather_ps::<4>(rp, idx0),
                    _mm256_loadu_ps(vals.as_ptr().add(i)),
                    acc0,
                );
                acc1 = _mm256_fmadd_ps(
                    _mm256_i32gather_ps::<4>(rp, idx1),
                    _mm256_loadu_ps(vals.as_ptr().add(i + 8)),
                    acc1,
                );
            }
        }
        let mut z = hsum(_mm256_add_ps(acc0, acc1));
        for i in chunks * 16..n {
            z += *rp.add(ids[i] as usize) * vals[i];
        }
        z
    }

    /// One contiguous row against `out.len()` examples (example-major
    /// `vals`), examples blocked four at a time over shared row loads.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; the row must hold at least `n` elements;
    /// `vals.len() == n * out.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_batch(rp: *const f32, n: usize, vals: &[f32], init: f32, out: &mut [f32]) {
        let b = out.len();
        let chunks = n / 8;
        let mut e = 0;
        while e + 4 <= b {
            let mut acc = [_mm256_setzero_ps(); 4];
            let base = [e * n, (e + 1) * n, (e + 2) * n, (e + 3) * n];
            for c in 0..chunks {
                let i = c * 8;
                let w8 = _mm256_loadu_ps(rp.add(i));
                for k in 0..4 {
                    acc[k] = _mm256_fmadd_ps(
                        w8,
                        _mm256_loadu_ps(vals.as_ptr().add(base[k] + i)),
                        acc[k],
                    );
                }
            }
            for k in 0..4 {
                let mut z = init + hsum(acc[k]);
                for i in chunks * 8..n {
                    z += *rp.add(i) * vals[base[k] + i];
                }
                out[e + k] = z;
            }
            e += 4;
        }
        while e < b {
            let mut acc = _mm256_setzero_ps();
            let base = e * n;
            for c in 0..chunks {
                let i = c * 8;
                acc = _mm256_fmadd_ps(
                    _mm256_loadu_ps(rp.add(i)),
                    _mm256_loadu_ps(vals.as_ptr().add(base + i)),
                    acc,
                );
            }
            let mut z = init + hsum(acc);
            for i in chunks * 8..n {
                z += *rp.add(i) * vals[base + i];
            }
            out[e] = z;
            e += 1;
        }
    }

    /// Contiguous fused Adam sweep over `vals.len()` elements starting at
    /// the row heads. Uses `mul/add/sqrt/div` (no FMA) in exactly the
    /// scalar `adam_step` operation order, so each lane is bit-identical
    /// to the Scalar path.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `wp/mp/vp` must each point at `vals.len()` valid
    /// elements; `prev_delta`, when given, has `vals.len()` elements.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn adam_contiguous(
        wp: *mut f32,
        mp: *mut f32,
        vp: *mut f32,
        vals: &[f32],
        delta: f32,
        mut prev_delta: Option<&mut [f32]>,
        adam: &AdamParams,
        clr: f32,
    ) {
        let n = vals.len();
        let b1 = _mm256_set1_ps(adam.beta1);
        let c1 = _mm256_set1_ps(1.0 - adam.beta1);
        let b2 = _mm256_set1_ps(adam.beta2);
        let c2 = _mm256_set1_ps(1.0 - adam.beta2);
        let eps = _mm256_set1_ps(adam.eps);
        let lr = _mm256_set1_ps(clr);
        let dv = _mm256_set1_ps(delta);
        let chunks = n / 8;
        for c in 0..chunks {
            let i = c * 8;
            let w_old = _mm256_loadu_ps(wp.add(i));
            if let Some(pd) = prev_delta.as_deref_mut() {
                let p = pd.as_mut_ptr().add(i);
                _mm256_storeu_ps(
                    p,
                    _mm256_add_ps(_mm256_loadu_ps(p), _mm256_mul_ps(dv, w_old)),
                );
            }
            // g = delta * val;  m = β₁m + (1−β₁)g;  v = β₂v + ((1−β₂)g)g;
            // w = w_old − clr·m / (√v + ε)  — the scalar op order.
            let g = _mm256_mul_ps(dv, _mm256_loadu_ps(vals.as_ptr().add(i)));
            let m2 = _mm256_add_ps(
                _mm256_mul_ps(b1, _mm256_loadu_ps(mp.add(i))),
                _mm256_mul_ps(c1, g),
            );
            let v2 = _mm256_add_ps(
                _mm256_mul_ps(b2, _mm256_loadu_ps(vp.add(i))),
                _mm256_mul_ps(_mm256_mul_ps(c2, g), g),
            );
            let den = _mm256_add_ps(_mm256_sqrt_ps(v2), eps);
            let w2 = _mm256_sub_ps(w_old, _mm256_div_ps(_mm256_mul_ps(lr, m2), den));
            _mm256_storeu_ps(wp.add(i), w2);
            _mm256_storeu_ps(mp.add(i), m2);
            _mm256_storeu_ps(vp.add(i), v2);
        }
        for i in chunks * 8..n {
            let w_old = *wp.add(i);
            if let Some(pd) = prev_delta.as_deref_mut() {
                pd[i] += delta * w_old;
            }
            let (w2, m2, v2) =
                crate::ops::adam_step(w_old, *mp.add(i), *vp.add(i), delta * vals[i], adam, clr);
            *wp.add(i) = w2;
            *mp.add(i) = m2;
            *vp.add(i) = v2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn atomic_row(values: &[f32]) -> Vec<AtomicU32> {
        values.iter().map(|v| AtomicU32::new(v.to_bits())).collect()
    }

    fn row_values(row: &[AtomicU32]) -> Vec<f32> {
        row.iter().map(read).collect()
    }

    /// Pseudo-random but deterministic test data.
    fn wave(n: usize, f: f32, scale: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * f).sin() * scale).collect()
    }

    #[test]
    fn read_write_round_trip() {
        let cell = AtomicU32::new(0);
        write(&cell, -3.25);
        assert_eq!(read(&cell), -3.25);
    }

    #[test]
    fn gather_dot_known_values() {
        let row = atomic_row(&[1.0, 2.0, 3.0, 4.0]);
        let ids = [3u32, 0];
        let vals = [10.0f32, 100.0];
        for mode in [KernelMode::Scalar, KernelMode::Vectorized] {
            assert_eq!(gather_dot(&row, &ids, &vals, 0.5, mode), 0.5 + 40.0 + 100.0);
        }
    }

    #[test]
    fn gather_dot_exact_agreement_on_short_ascending_ids() {
        // Fewer than 8 ids: the vectorized kernel takes the sequential
        // tail, so the summation order matches Scalar exactly.
        let row = atomic_row(&wave(32, 0.7, 2.0));
        let ids: Vec<u32> = (0..7).map(|i| i * 4).collect();
        let vals = wave(7, 0.3, 1.5);
        let s = gather_dot(&row, &ids, &vals, 0.125, KernelMode::Scalar);
        let v = gather_dot(&row, &ids, &vals, 0.125, KernelMode::Vectorized);
        assert_eq!(s.to_bits(), v.to_bits());
    }

    #[test]
    fn gather_dot_dense_identity_agrees_with_scalar() {
        // The contiguous SIMD path (dense-identity ids, n >= 16).
        let row = atomic_row(&wave(200, 0.61, 1.5));
        let ids: Vec<u32> = (0..200u32).collect();
        let vals = wave(200, 0.23, 1.0);
        let s = gather_dot(&row, &ids, &vals, 0.5, KernelMode::Scalar);
        let v = gather_dot(&row, &ids, &vals, 0.5, KernelMode::Vectorized);
        assert!((s - v).abs() <= 1e-4 * (1.0 + s.abs()), "{s} vs {v}");
    }

    #[test]
    fn gather_dot_batch_matches_per_example() {
        let row = atomic_row(&wave(64, 0.9, 1.0));
        let ids: Vec<u32> = (0..64u32).collect();
        let examples = 5;
        let vals = wave(64 * examples, 0.21, 1.0);
        let mut out = vec![0.0f32; examples];
        for mode in [KernelMode::Scalar, KernelMode::Vectorized] {
            gather_dot_batch(&row, &ids, &vals, -0.25, &mut out, mode);
            for (e, &o) in out.iter().enumerate() {
                let single = gather_dot(
                    &row,
                    &ids,
                    &vals[e * 64..(e + 1) * 64],
                    -0.25,
                    KernelMode::Scalar,
                );
                assert!(
                    (o - single).abs() <= 1e-4 * (1.0 + single.abs()),
                    "mode {mode}, example {e}: {o} vs {single}"
                );
            }
        }
    }

    #[test]
    fn gather_dot_batch_scattered_ids_match_too() {
        // Non-identity ids take the portable 4-at-a-time path.
        let row = atomic_row(&wave(50, 0.33, 2.0));
        let ids: Vec<u32> = (0..30u32).map(|i| (i * 7) % 50).collect();
        let examples = 3;
        let vals = wave(30 * examples, 0.19, 1.0);
        let mut s_out = vec![0.0f32; examples];
        let mut v_out = vec![0.0f32; examples];
        gather_dot_batch(&row, &ids, &vals, 1.0, &mut s_out, KernelMode::Scalar);
        gather_dot_batch(&row, &ids, &vals, 1.0, &mut v_out, KernelMode::Vectorized);
        for (s, v) in s_out.iter().zip(&v_out) {
            assert!((s - v).abs() <= 1e-4 * (1.0 + s.abs()));
        }
    }

    #[test]
    fn gather_dot_batch_empty_ids_yields_init() {
        let row = atomic_row(&[1.0]);
        let mut out = vec![9.0f32; 3];
        gather_dot_batch(&row, &[], &[], 0.75, &mut out, KernelMode::Vectorized);
        assert_eq!(out, vec![0.75; 3]);
    }

    #[test]
    fn adam_step_gather_matches_sequential_reference() {
        let adam = AdamParams::with_lr(0.01);
        let clr = adam.corrected_lr(3);
        let fan_in = 37;
        let ids: Vec<u32> = (0..fan_in as u32).rev().collect(); // unique, descending
        let vals = wave(fan_in, 0.51, 2.0);
        let delta = 0.7f32;

        let run = |mode: KernelMode| {
            let w = atomic_row(&wave(fan_in, 0.13, 1.0));
            let m = atomic_row(&wave(fan_in, 0.29, 0.1));
            let v = atomic_row(
                &wave(fan_in, 0.37, 0.01)
                    .iter()
                    .map(|x| x * x)
                    .collect::<Vec<_>>(),
            );
            let mut pd = vec![0.5f32; fan_in];
            adam_step_gather(
                &w,
                &m,
                &v,
                &ids,
                &vals,
                delta,
                Some(&mut pd),
                &adam,
                clr,
                mode,
            );
            (row_values(&w), row_values(&m), row_values(&v), pd)
        };
        let (ws, ms, vs, pds) = run(KernelMode::Scalar);
        let (wv, mv, vv, pdv) = run(KernelMode::Vectorized);
        // Unique ids + identical per-element arithmetic: exact agreement.
        for i in 0..fan_in {
            assert_eq!(ws[i].to_bits(), wv[i].to_bits(), "w[{i}]");
            assert_eq!(ms[i].to_bits(), mv[i].to_bits(), "m[{i}]");
            assert_eq!(vs[i].to_bits(), vv[i].to_bits(), "v[{i}]");
            assert_eq!(pds[i].to_bits(), pdv[i].to_bits(), "prev_delta[{i}]");
        }
    }

    #[test]
    fn adam_step_gather_identity_simd_block_is_bit_exact() {
        // Dense-identity ids, n >= 8: the AVX block (when available) must
        // still match Scalar bit-for-bit — it uses the same op sequence.
        let adam = AdamParams::default();
        let clr = adam.corrected_lr(12);
        let n = 61; // 7 full 8-lane blocks + remainder
        let ids: Vec<u32> = (0..n as u32).collect();
        let vals = wave(n, 0.47, 1.7);
        let run = |mode: KernelMode| {
            let w = atomic_row(&wave(n, 0.11, 1.0));
            let m = atomic_row(&wave(n, 0.31, 0.2));
            let v = atomic_row(&vec![0.003f32; n]);
            let mut pd = vec![0.25f32; n];
            adam_step_gather(
                &w,
                &m,
                &v,
                &ids,
                &vals,
                -0.9,
                Some(&mut pd),
                &adam,
                clr,
                mode,
            );
            (row_values(&w), row_values(&m), row_values(&v), pd)
        };
        let (ws, ms, vs, pds) = run(KernelMode::Scalar);
        let (wv, mv, vv, pdv) = run(KernelMode::Vectorized);
        for i in 0..n {
            assert_eq!(ws[i].to_bits(), wv[i].to_bits(), "w[{i}]");
            assert_eq!(ms[i].to_bits(), mv[i].to_bits(), "m[{i}]");
            assert_eq!(vs[i].to_bits(), vv[i].to_bits(), "v[{i}]");
            assert_eq!(pds[i].to_bits(), pdv[i].to_bits(), "prev_delta[{i}]");
        }
    }

    #[test]
    fn adam_step_gather_without_prev_delta() {
        let adam = AdamParams::default();
        let clr = adam.corrected_lr(1);
        let w = atomic_row(&[1.0, 2.0]);
        let m = atomic_row(&[0.0, 0.0]);
        let v = atomic_row(&[0.0, 0.0]);
        adam_step_gather(
            &w,
            &m,
            &v,
            &[0, 1],
            &[1.0, -1.0],
            0.5,
            None,
            &adam,
            clr,
            KernelMode::Vectorized,
        );
        // Positive gradient moves the weight down, negative up.
        assert!(read(&w[0]) < 1.0);
        assert!(read(&w[1]) > 2.0);
        assert!(read(&m[0]) > 0.0 && read(&v[0]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn gather_dot_validates_lengths() {
        let row = atomic_row(&[1.0]);
        let _ = gather_dot(&row, &[0, 0], &[1.0], 0.0, KernelMode::Scalar);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn vectorized_gather_validates_ids_before_touching_memory() {
        let row = atomic_row(&[1.0, 2.0]);
        let _ = gather_dot(&row, &[0, 5], &[1.0, 1.0], 0.0, KernelMode::Vectorized);
    }

    proptest! {
        #[test]
        fn prop_gather_dot_modes_agree(
            pairs in proptest::collection::vec((0u32..64, -4.0f32..4.0), 0..120),
            init in -2.0f32..2.0
        ) {
            let row = atomic_row(&wave(64, 0.77, 3.0));
            let (ids, vals): (Vec<u32>, Vec<f32>) = pairs.into_iter().unzip();
            let s = gather_dot(&row, &ids, &vals, init, KernelMode::Scalar);
            let v = gather_dot(&row, &ids, &vals, init, KernelMode::Vectorized);
            prop_assert!((s - v).abs() <= 1e-5 * (1.0 + s.abs()) * ids.len().max(1) as f32,
                "scalar {s} vs vectorized {v}");
        }

        #[test]
        fn prop_adam_step_gather_modes_agree(
            raw_ids in proptest::collection::vec(0u32..96, 1..80),
            delta in -2.0f32..2.0,
            step in 1u64..200
        ) {
            // Unique ids (the engine's id lists never repeat).
            let mut ids = raw_ids;
            ids.sort_unstable();
            ids.dedup();
            let vals = wave(ids.len(), 0.43, 2.0);
            let adam = AdamParams::default();
            let clr = adam.corrected_lr(step);
            let run = |mode: KernelMode| {
                let w = atomic_row(&wave(96, 0.17, 1.0));
                let m = atomic_row(&wave(96, 0.23, 0.1));
                let v = atomic_row(&vec![0.01f32; 96]);
                let mut pd = vec![0.0f32; ids.len()];
                adam_step_gather(&w, &m, &v, &ids, &vals, delta, Some(&mut pd), &adam, clr, mode);
                (row_values(&w), pd)
            };
            let (ws, pds) = run(KernelMode::Scalar);
            let (wv, pdv) = run(KernelMode::Vectorized);
            for i in 0..96 {
                prop_assert!((ws[i] - wv[i]).abs() <= 1e-5 * (1.0 + ws[i].abs()), "w[{}]", i);
            }
            for i in 0..ids.len() {
                prop_assert!((pds[i] - pdv[i]).abs() <= 1e-5 * (1.0 + pds[i].abs()), "pd[{}]", i);
            }
        }
    }
}
