//! Cache-line-aligned allocations and padding.
//!
//! Two false-sharing mitigations from the paper's Appendix D:
//!
//! * [`AlignedVec`] — an `f32` buffer whose base address is aligned to the
//!   cache line, so SIMD loads are aligned and a buffer never straddles
//!   another thread's line at its start;
//! * [`CachePadded`] — wraps a value in a full cache line, used for
//!   per-thread counters ("aligning them on cache line boundaries (e.g.,
//!   by padding) significantly reduces the false sharing opportunities").

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};

/// Cache line size assumed throughout (x86-64 and most aarch64).
pub const CACHE_LINE_BYTES: usize = 64;

/// A heap-allocated `f32` buffer aligned to [`CACHE_LINE_BYTES`] and
/// zero-initialized.
///
/// # Example
///
/// ```
/// use slide_kernels::AlignedVec;
///
/// let mut v = AlignedVec::zeroed(100);
/// v[3] = 1.5;
/// assert_eq!(v.as_ptr() as usize % 64, 0);
/// assert_eq!(v[3], 1.5);
/// assert_eq!(v.len(), 100);
/// ```
#[derive(Debug)]
pub struct AlignedVec {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively, like Vec<f32>.
unsafe impl Send for AlignedVec {}
// SAFETY: shared access is read-only (mutation requires &mut self), so
// &AlignedVec across threads is as safe as &[f32].
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocates `len` zeroed floats on a cache-line boundary.
    ///
    /// Zero-length vectors allocate nothing and hold a dangling (but
    /// aligned) pointer, mirroring `Vec`.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self {
                ptr: std::ptr::NonNull::<f32>::dangling().as_ptr(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has nonzero size (len > 0 checked above).
        let ptr = unsafe { alloc_zeroed(layout) } as *mut f32;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        Self { ptr, len }
    }

    fn layout(len: usize) -> Layout {
        // Round the byte size up to whole cache lines so the allocation
        // also *ends* on a line boundary (no trailing false sharing).
        let bytes = len * std::mem::size_of::<f32>();
        let padded = bytes.div_ceil(CACHE_LINE_BYTES) * CACHE_LINE_BYTES;
        Layout::from_size_align(padded, CACHE_LINE_BYTES).expect("valid layout")
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw const pointer to the first element.
    #[inline]
    pub fn as_ptr(&self) -> *const f32 {
        self.ptr
    }

    /// Raw mut pointer to the first element.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.ptr
    }
}

impl Deref for AlignedVec {
    type Target = [f32];

    #[inline]
    fn deref(&self) -> &[f32] {
        // SAFETY: ptr is valid for len floats (or dangling with len 0).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl DerefMut for AlignedVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        // SAFETY: exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated with the identical layout in `zeroed`.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        let mut new = Self::zeroed(self.len);
        new.copy_from_slice(self);
        new
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl From<&[f32]> for AlignedVec {
    fn from(slice: &[f32]) -> Self {
        let mut v = Self::zeroed(slice.len());
        v.copy_from_slice(slice);
        v
    }
}

/// Pads a value to a full cache line so adjacent instances never share a
/// line (the classic `crossbeam_utils::CachePadded`, reimplemented here to
/// keep the dependency surface minimal).
///
/// # Example
///
/// ```
/// use slide_kernels::CachePadded;
///
/// let counters: Vec<CachePadded<u64>> = (0..4).map(CachePadded::new).collect();
/// assert!(std::mem::size_of::<CachePadded<u64>>() >= 64);
/// assert_eq!(*counters[2], 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_vec_is_aligned_and_zeroed() {
        for len in [1, 7, 16, 63, 64, 65, 1000] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(v.as_ptr() as usize % CACHE_LINE_BYTES, 0, "len {len}");
            assert_eq!(v.len(), len);
            assert!(v.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn empty_vec_is_fine() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(&v[..], &[] as &[f32]);
        let _ = v.clone();
    }

    #[test]
    fn write_read_roundtrip() {
        let mut v = AlignedVec::zeroed(10);
        for i in 0..10 {
            v[i] = i as f32 * 0.5;
        }
        assert_eq!(v[9], 4.5);
        let total: f32 = v.iter().sum();
        assert_eq!(total, 22.5);
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedVec::zeroed(5);
        a[0] = 1.0;
        let b = a.clone();
        a[0] = 2.0;
        assert_eq!(b[0], 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn from_slice() {
        let v = AlignedVec::from(&[1.0f32, 2.0, 3.0][..]);
        assert_eq!(&v[..], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn cache_padded_layout() {
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 64);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 64);
        let v: Vec<CachePadded<u32>> = (0..3).map(CachePadded::new).collect();
        let a0 = &v[0] as *const _ as usize;
        let a1 = &v[1] as *const _ as usize;
        assert!(a1 - a0 >= 64, "adjacent values share a cache line");
    }

    #[test]
    fn cache_padded_deref() {
        let mut c = CachePadded::new(41u32);
        *c += 1;
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignedVec>();
        assert_send_sync::<CachePadded<u64>>();
    }
}
