//! Scalar and vectorized numeric kernels.
//!
//! Every kernel takes a [`KernelMode`]; `Vectorized` uses 8-lane unrolled
//! loops that LLVM auto-vectorizes into SIMD (the portable stand-in for
//! the paper's Intel AVX intrinsics), with explicit prefetch hints on
//! x86-64 standing in for the paper's software pipelining. `Scalar` is the
//! naive loop. Figure 10's "SLIDE-CPU Optimized vs SLIDE-CPU" experiment
//! toggles exactly this switch.

/// Which kernel implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Naive element-at-a-time loops.
    Scalar,
    /// Unrolled, auto-vectorizable loops with prefetch hints.
    #[default]
    Vectorized,
}

impl KernelMode {
    /// Parses `"scalar"` or `"vectorized"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelMode::Scalar),
            "vectorized" | "simd" => Some(KernelMode::Vectorized),
            _ => None,
        }
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelMode::Scalar => write!(f, "scalar"),
            KernelMode::Vectorized => write!(f, "vectorized"),
        }
    }
}

/// The instruction set the `Vectorized` kernels actually dispatch to on
/// this machine: `"avx2+fma"` when runtime detection finds both,
/// `"portable-unrolled"` otherwise; `Scalar` always reports `"scalar"`.
/// Benchmarks record this so committed numbers are attributable to an ISA.
pub fn dispatched_isa(mode: KernelMode) -> &'static str {
    match mode {
        KernelMode::Scalar => "scalar",
        KernelMode::Vectorized => {
            #[cfg(target_arch = "x86_64")]
            if crate::fused::have_avx2_fma() {
                return "avx2+fma";
            }
            "portable-unrolled"
        }
    }
}

/// Prefetches the cache line containing `ptr` (x86-64 only; a no-op
/// elsewhere). Stands in for the paper's `PREFETCHT0`-based software
/// pipeline.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _mm_prefetch has no memory safety requirements; any address
    // is allowed (it is a hint).
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Dot product `a · b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use slide_kernels::{dot, KernelMode};
///
/// let a = [1.0, 2.0, 3.0];
/// let b = [4.0, 5.0, 6.0];
/// assert_eq!(dot(&a, &b, KernelMode::Vectorized), 32.0);
/// ```
pub fn dot(a: &[f32], b: &[f32], mode: KernelMode) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    match mode {
        KernelMode::Scalar => {
            let mut acc = 0.0f32;
            for (x, y) in a.iter().zip(b) {
                acc += x * y;
            }
            acc
        }
        KernelMode::Vectorized => {
            // 8 independent accumulators break the loop-carried dependency
            // so LLVM vectorizes and the FMA ports stay busy.
            let mut acc = [0.0f32; 8];
            let chunks = a.len() / 8;
            for c in 0..chunks {
                let i = c * 8;
                if i + 64 < a.len() {
                    prefetch_read(a.as_ptr().wrapping_add(i + 64));
                    prefetch_read(b.as_ptr().wrapping_add(i + 64));
                }
                for lane in 0..8 {
                    acc[lane] += a[i + lane] * b[i + lane];
                }
            }
            let mut total: f32 = acc.iter().sum();
            for i in chunks * 8..a.len() {
                total += a[i] * b[i];
            }
            total
        }
    }
}

/// `y += alpha * x` (the BLAS axpy).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32], mode: KernelMode) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match mode {
        KernelMode::Scalar => {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi += alpha * xi;
            }
        }
        KernelMode::Vectorized => {
            let chunks = x.len() / 8;
            for c in 0..chunks {
                let i = c * 8;
                if i + 64 < x.len() {
                    prefetch_read(x.as_ptr().wrapping_add(i + 64));
                }
                for lane in 0..8 {
                    y[i + lane] += alpha * x[i + lane];
                }
            }
            for i in chunks * 8..x.len() {
                y[i] += alpha * x[i];
            }
        }
    }
}

/// ReLU in place: `x = max(x, 0)`.
pub fn relu_in_place(x: &mut [f32], mode: KernelMode) {
    match mode {
        KernelMode::Scalar => {
            for v in x.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        KernelMode::Vectorized => {
            // max() compiles to a branchless maxps under vectorization.
            for v in x.iter_mut() {
                *v = v.max(0.0);
            }
        }
    }
}

/// Numerically-stable softmax in place over an *active subset* of logits.
///
/// This is the paper's sparse softmax: "the normalizing constant ... is no
/// longer the sum over all neurons but only the active ones" (§3.1).
///
/// Empty input is a no-op. All-equal logits yield the uniform
/// distribution.
pub fn softmax_in_place(logits: &mut [f32], mode: KernelMode) {
    if logits.is_empty() {
        return;
    }
    let _ = mode; // same code path; exp dominates and is scalar either way
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in logits.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in logits.iter_mut() {
        *v *= inv;
    }
}

/// Adam hyper-parameters (paper uses Adam with defaults; Kingma & Ba 2014).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamParams {
    /// Step size α.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Denominator fuzz ε.
    pub eps: f32,
}

impl Default for AdamParams {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

impl AdamParams {
    /// Creates params with the given learning rate and standard betas.
    pub fn with_lr(lr: f32) -> Self {
        Self {
            lr,
            ..Self::default()
        }
    }

    /// Bias-corrected step size for timestep `t` (1-based):
    /// `α · √(1 − β₂ᵗ) / (1 − β₁ᵗ)`.
    pub fn corrected_lr(&self, t: u64) -> f32 {
        let t = t.max(1) as i32;
        self.lr * (1.0 - self.beta2.powi(t)).sqrt() / (1.0 - self.beta1.powi(t))
    }
}

/// One Adam update of a single scalar parameter.
///
/// Returns the new `(weight, m, v)` triple given gradient `g` and the
/// *pre-corrected* step size from [`AdamParams::corrected_lr`]. Kept as a
/// scalar primitive because SLIDE's updates are sparse and scattered — the
/// engine iterates over touched weights only.
#[inline(always)]
pub fn adam_step(
    weight: f32,
    m: f32,
    v: f32,
    g: f32,
    params: &AdamParams,
    corrected_lr: f32,
) -> (f32, f32, f32) {
    let m = params.beta1 * m + (1.0 - params.beta1) * g;
    let v = params.beta2 * v + (1.0 - params.beta2) * g * g;
    let w = weight - corrected_lr * m / (v.sqrt() + params.eps);
    (w, m, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const MODES: [KernelMode; 2] = [KernelMode::Scalar, KernelMode::Vectorized];

    #[test]
    fn dot_known_values() {
        for mode in MODES {
            assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0], mode), 11.0);
            assert_eq!(dot(&[], &[], mode), 0.0);
        }
    }

    #[test]
    fn dot_modes_agree_on_long_vectors() {
        let a: Vec<f32> = (0..1003).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..1003).map(|i| (i as f32 * 0.11).cos()).collect();
        let s = dot(&a, &b, KernelMode::Scalar);
        let v = dot(&a, &b, KernelMode::Vectorized);
        assert!((s - v).abs() < 1e-2 * (1.0 + s.abs()), "{s} vs {v}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0], KernelMode::Scalar);
    }

    #[test]
    fn axpy_known_values() {
        for mode in MODES {
            let x = [1.0f32, 2.0, 3.0];
            let mut y = [10.0f32, 20.0, 30.0];
            axpy(2.0, &x, &mut y, mode);
            assert_eq!(y, [12.0, 24.0, 36.0]);
        }
    }

    #[test]
    fn axpy_modes_agree() {
        let x: Vec<f32> = (0..517).map(|i| (i as f32).sqrt()).collect();
        let mut y1: Vec<f32> = (0..517).map(|i| i as f32 * 0.1).collect();
        let mut y2 = y1.clone();
        axpy(-0.3, &x, &mut y1, KernelMode::Scalar);
        axpy(-0.3, &x, &mut y2, KernelMode::Vectorized);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        for mode in MODES {
            let mut x = [-1.0f32, 0.0, 2.5, -0.1];
            relu_in_place(&mut x, mode);
            assert_eq!(x, [0.0, 0.0, 2.5, 0.0]);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_is_ordered() {
        let mut x = [1.0f32, 3.0, 2.0];
        softmax_in_place(&mut x, KernelMode::Vectorized);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(x[1] > x[2] && x[2] > x[0]);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let mut x = [1000.0f32, 999.0, -1000.0];
        softmax_in_place(&mut x, KernelMode::Scalar);
        assert!(x.iter().all(|v| v.is_finite()));
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_uniform_on_equal_logits() {
        let mut x = [5.0f32; 4];
        softmax_in_place(&mut x, KernelMode::Vectorized);
        for v in x {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut x: [f32; 0] = [];
        softmax_in_place(&mut x, KernelMode::Scalar);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(w) = (w - 3)^2 with Adam; must approach w = 3.
        let params = AdamParams::with_lr(0.1);
        let (mut w, mut m, mut v) = (0.0f32, 0.0f32, 0.0f32);
        for t in 1..=2000u64 {
            let g = 2.0 * (w - 3.0);
            let clr = params.corrected_lr(t);
            (w, m, v) = adam_step(w, m, v, g, &params, clr);
        }
        assert!((w - 3.0).abs() < 0.05, "w = {w}");
    }

    #[test]
    fn adam_corrected_lr_approaches_lr() {
        let p = AdamParams::with_lr(0.01);
        // With the default betas, √(1−β₂)/(1−β₁) ≈ 0.316 at t = 1, so the
        // corrected step starts damped and converges up to lr.
        let first = p.corrected_lr(1);
        assert!((first - 0.01 * 0.316).abs() < 1e-4, "first {first}");
        assert!(first < p.corrected_lr(10_000));
        assert!((p.corrected_lr(1_000_000) - 0.01).abs() < 1e-4);
    }

    #[test]
    fn kernel_mode_parse() {
        assert_eq!(KernelMode::parse("scalar"), Some(KernelMode::Scalar));
        assert_eq!(KernelMode::parse("SIMD"), Some(KernelMode::Vectorized));
        assert_eq!(KernelMode::parse("avx"), None);
        assert_eq!(KernelMode::Vectorized.to_string(), "vectorized");
    }

    proptest! {
        #[test]
        fn prop_dot_modes_agree(
            v in proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 0..200)
        ) {
            let (a, b): (Vec<f32>, Vec<f32>) = v.into_iter().unzip();
            let s = dot(&a, &b, KernelMode::Scalar);
            let x = dot(&a, &b, KernelMode::Vectorized);
            prop_assert!((s - x).abs() <= 1e-3 * (1.0 + s.abs()));
        }

        #[test]
        fn prop_softmax_is_distribution(
            mut x in proptest::collection::vec(-50.0f32..50.0, 1..100)
        ) {
            softmax_in_place(&mut x, KernelMode::Vectorized);
            let sum: f32 = x.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(x.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }

        #[test]
        fn prop_relu_idempotent(
            mut x in proptest::collection::vec(-10.0f32..10.0, 0..50)
        ) {
            relu_in_place(&mut x, KernelMode::Scalar);
            let once = x.clone();
            relu_in_place(&mut x, KernelMode::Vectorized);
            prop_assert_eq!(once, x);
        }
    }
}
