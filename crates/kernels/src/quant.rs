//! Fixed-point i16 row kernels for the frozen serving path.
//!
//! Training stays f32/HOGWILD; at snapshot time the wide output layer's
//! rows can be quantized to 16-bit fixed point with one scale per row
//! (`w ≈ scale · q`, `q ∈ [-32767, 32767]`), halving the bytes every
//! candidate-scoring gather moves. These kernels fuse the dequantization
//! into the dot product: the integer row is widened in registers and
//! multiplied by the f32 activations, and the row scale is applied once
//! to the final sum — `z = init + scale · Σᵢ q[idsᵢ] · valsᵢ`.
//!
//! Mirrors [`crate::fused`]: `Scalar` is the strict sequential reference,
//! `Vectorized` dispatches to AVX2/FMA at runtime with an unrolled
//! portable fallback. Quantized rows are immutable (serving only), so
//! unlike `fused` there is no atomic-cell protocol here — plain `&[i16]`.

use crate::ops::{prefetch_read, KernelMode};

/// Quantizes one f32 row to i16, returning the per-row scale.
///
/// The scale is `max|row| / 32767` so the largest magnitude maps to the
/// edge of the i16 range; an all-zero row gets scale `0.0`. Round-trip
/// error per weight is at most `scale / 2` (plus a few ulps of f32
/// rounding in the encode — the reciprocal `32767 / max` is not exact).
///
/// # Panics
///
/// Panics if the slice lengths differ or the row contains a non-finite
/// value.
pub fn quantize_row(row: &[f32], q: &mut [i16]) -> f32 {
    assert_eq!(row.len(), q.len(), "quantize_row: length mismatch");
    let mut max = 0.0f32;
    for &w in row {
        assert!(w.is_finite(), "quantize_row: non-finite weight {w}");
        max = max.max(w.abs());
    }
    if max == 0.0 {
        q.fill(0);
        return 0.0;
    }
    let scale = max / 32767.0;
    let inv = 32767.0 / max;
    for (dst, &w) in q.iter_mut().zip(row) {
        *dst = (w * inv).round().clamp(-32767.0, 32767.0) as i16;
    }
    scale
}

/// Fused dequantize-gather-dot against one quantized row:
/// `init + scale · Σᵢ q[ids[i]] · vals[i]`.
///
/// The integer-to-float widening is exact (`|q| ≤ 32767 < 2²⁴`), so the
/// only quantization error is the one introduced at encode time. As with
/// [`crate::fused::gather_dot`], `Scalar` and `Vectorized` differ only in
/// summation order.
///
/// # Panics
///
/// Panics if `ids` and `vals` lengths differ or an id indexes past the
/// row.
pub fn gather_dot_q16(
    q: &[i16],
    scale: f32,
    ids: &[u32],
    vals: &[f32],
    init: f32,
    mode: KernelMode,
) -> f32 {
    assert_eq!(ids.len(), vals.len(), "gather_dot_q16: length mismatch");
    match mode {
        KernelMode::Scalar => {
            let mut acc = 0.0f32;
            for (&id, &v) in ids.iter().zip(vals) {
                acc += q[id as usize] as f32 * v;
            }
            init + scale * acc
        }
        KernelMode::Vectorized => {
            for &id in ids {
                assert!(
                    (id as usize) < q.len(),
                    "gather_dot_q16: id {id} out of range for row of {}",
                    q.len()
                );
            }
            let n = ids.len();
            let qp = q.as_ptr();

            #[cfg(target_arch = "x86_64")]
            if n >= 16 && crate::fused::have_avx2_fma() {
                // SAFETY: ids validated above; AVX2+FMA presence checked.
                return init + scale * unsafe { avxq::gather_dot(qp, ids, vals) };
            }

            let mut acc = [0.0f32; 8];
            let chunks = n / 8;
            for c in 0..chunks {
                let i = c * 8;
                if i + 15 < n {
                    prefetch_read(qp.wrapping_add(ids[i + 8] as usize));
                }
                for lane in 0..8 {
                    // SAFETY: ids validated against q.len() above.
                    acc[lane] += unsafe { *qp.add(ids[i + lane] as usize) } as f32 * vals[i + lane];
                }
            }
            let mut z = acc.iter().sum::<f32>();
            for i in chunks * 8..n {
                // SAFETY: ids validated against q.len() above.
                z += unsafe { *qp.add(ids[i] as usize) } as f32 * vals[i];
            }
            init + scale * z
        }
    }
}

/// Scores one quantized row against `out.len()` examples sharing the
/// dense identity id list `0..n`:
/// `out[e] = init + scale · Σᵢ q[i] · vals[e·n + i]`.
///
/// `vals` is example-major, exactly like
/// [`crate::fused::gather_dot_batch`] — this is its drop-in quantized
/// sibling for the batched serving scorer, moving half the row bytes.
///
/// # Panics
///
/// Panics if `n > q.len()` or `vals.len() != n * out.len()`.
pub fn dot_batch_q16(
    q: &[i16],
    scale: f32,
    n: usize,
    vals: &[f32],
    init: f32,
    out: &mut [f32],
    mode: KernelMode,
) {
    assert!(n <= q.len(), "dot_batch_q16: n exceeds row length");
    assert_eq!(
        vals.len(),
        n * out.len(),
        "dot_batch_q16: vals must hold n values per example"
    );
    match mode {
        KernelMode::Scalar => {
            for (e, o) in out.iter_mut().enumerate() {
                let ex = &vals[e * n..(e + 1) * n];
                let mut acc = 0.0f32;
                for (i, &v) in ex.iter().enumerate() {
                    acc += q[i] as f32 * v;
                }
                *o = init + scale * acc;
            }
        }
        KernelMode::Vectorized => {
            #[cfg(target_arch = "x86_64")]
            if n >= 16 && crate::fused::have_avx2_fma() {
                // SAFETY: n bounds-checked against the row; AVX2+FMA
                // presence checked.
                unsafe { avxq::dot_batch(q.as_ptr(), scale, n, vals, init, out) };
                return;
            }

            for (e, o) in out.iter_mut().enumerate() {
                let ex = &vals[e * n..(e + 1) * n];
                let mut acc = [0.0f32; 4];
                let chunks = n / 4;
                for c in 0..chunks {
                    let i = c * 4;
                    for lane in 0..4 {
                        acc[lane] += q[i + lane] as f32 * ex[i + lane];
                    }
                }
                let mut z = acc.iter().sum::<f32>();
                for i in chunks * 4..n {
                    z += q[i] as f32 * ex[i];
                }
                *o = init + scale * z;
            }
        }
    }
}

/// AVX2/FMA widening-dot kernels (x86-64 only). Eight i16 lanes are
/// loaded per 128-bit read, widened to i32 then f32 — both exact — and
/// FMA'd against the activations.
#[cfg(target_arch = "x86_64")]
mod avxq {
    use std::arch::x86_64::*;

    /// Horizontal sum of a 256-bit accumulator.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (register-only shuffles, touches no memory).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(acc: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(acc, 1);
        let lo = _mm256_castps256_ps128(acc);
        let quad = _mm_add_ps(lo, hi);
        let dual = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
        let s = _mm_add_ss(dual, _mm_shuffle_ps(dual, dual, 0b01));
        _mm_cvtss_f32(s)
    }

    /// Loads 8 consecutive i16 and widens to 8 f32 lanes (exact).
    ///
    /// # Safety
    ///
    /// Requires AVX2; `p` must point at 8 readable i16.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn widen8(p: *const i16) -> __m256 {
        _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(_mm_loadu_si128(p as *const __m128i)))
    }

    /// `Σᵢ q[ids[i]] · vals[i]` with per-lane scalar gathers of the i16
    /// row (no 16-bit hardware gather exists) batched eight at a time.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; every id must index below the row length;
    /// `ids.len() == vals.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gather_dot(qp: *const i16, ids: &[u32], vals: &[f32]) -> f32 {
        let n = ids.len();
        let mut acc = _mm256_setzero_ps();
        let chunks = n / 8;
        for c in 0..chunks {
            let i = c * 8;
            let g = [
                *qp.add(ids[i] as usize),
                *qp.add(ids[i + 1] as usize),
                *qp.add(ids[i + 2] as usize),
                *qp.add(ids[i + 3] as usize),
                *qp.add(ids[i + 4] as usize),
                *qp.add(ids[i + 5] as usize),
                *qp.add(ids[i + 6] as usize),
                *qp.add(ids[i + 7] as usize),
            ];
            acc = _mm256_fmadd_ps(
                widen8(g.as_ptr()),
                _mm256_loadu_ps(vals.as_ptr().add(i)),
                acc,
            );
        }
        let mut z = hsum(acc);
        for i in chunks * 8..n {
            z += *qp.add(ids[i] as usize) as f32 * vals[i];
        }
        z
    }

    /// One contiguous quantized row against `out.len()` examples
    /// (example-major `vals`), examples blocked eight at a time so each
    /// widened row block is reused across eight FMA chains — the widen
    /// (load + two converts) costs roughly triple an f32 row load, so it
    /// needs wider amortization than [`crate::fused`]'s four-example
    /// blocking to reach compute parity with the f32 kernel while moving
    /// half the row bytes.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; the row must hold at least `n` elements;
    /// `vals.len() == n * out.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot_batch(
        qp: *const i16,
        scale: f32,
        n: usize,
        vals: &[f32],
        init: f32,
        out: &mut [f32],
    ) {
        let b = out.len();
        let chunks = n / 8;
        let mut e = 0;
        while e + 8 <= b {
            let mut acc = [_mm256_setzero_ps(); 8];
            let base = e * n;
            for c in 0..chunks {
                let i = c * 8;
                let w8 = widen8(qp.add(i));
                for (k, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_fmadd_ps(
                        w8,
                        _mm256_loadu_ps(vals.as_ptr().add(base + k * n + i)),
                        *a,
                    );
                }
            }
            for (k, a) in acc.iter().enumerate() {
                let mut z = hsum(*a);
                for i in chunks * 8..n {
                    z += *qp.add(i) as f32 * vals[base + k * n + i];
                }
                out[e + k] = init + scale * z;
            }
            e += 8;
        }
        while e < b {
            let mut acc = _mm256_setzero_ps();
            let base = e * n;
            for c in 0..chunks {
                let i = c * 8;
                acc = _mm256_fmadd_ps(
                    widen8(qp.add(i)),
                    _mm256_loadu_ps(vals.as_ptr().add(base + i)),
                    acc,
                );
            }
            let mut z = hsum(acc);
            for i in chunks * 8..n {
                z += *qp.add(i) as f32 * vals[base + i];
            }
            out[e] = init + scale * z;
            e += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    struct TinyRng(u64);

    impl TinyRng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }

        fn f32(&mut self) -> f32 {
            (self.next() >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        }
    }

    #[test]
    fn quantize_round_trip_error_bound() {
        let mut rng = TinyRng(3);
        let row: Vec<f32> = (0..257).map(|_| rng.f32() * 2.0).collect();
        let mut q = vec![0i16; row.len()];
        let scale = quantize_row(&row, &mut q);
        for (&w, &qi) in row.iter().zip(&q) {
            let back = qi as f32 * scale;
            assert!(
                (w - back).abs() <= scale * 0.5 + f32::EPSILON,
                "{w} -> {back} (scale {scale})"
            );
        }
    }

    #[test]
    fn quantize_zero_row() {
        let row = [0.0f32; 9];
        let mut q = [1i16; 9];
        let scale = quantize_row(&row, &mut q);
        assert_eq!(scale, 0.0);
        assert!(q.iter().all(|&x| x == 0));
    }

    #[test]
    fn quantize_saturates_at_extremes() {
        let row = [3.0f32, -3.0, 1.5];
        let mut q = [0i16; 3];
        let scale = quantize_row(&row, &mut q);
        assert_eq!(q[0], 32767);
        assert_eq!(q[1], -32767);
        assert!((scale - 3.0 / 32767.0).abs() < 1e-9);
    }

    fn setup(n: usize, seed: u64) -> (Vec<i16>, f32, Vec<u32>, Vec<f32>) {
        let mut rng = TinyRng(seed | 1);
        let row: Vec<f32> = (0..n).map(|_| rng.f32()).collect();
        let mut q = vec![0i16; n];
        let scale = quantize_row(&row, &mut q);
        let ids: Vec<u32> = (0..n as u32).collect();
        let vals: Vec<f32> = (0..n).map(|_| rng.f32()).collect();
        (q, scale, ids, vals)
    }

    #[test]
    fn gather_dot_modes_agree() {
        for &n in &[3usize, 8, 16, 33, 129] {
            let (q, scale, ids, vals) = setup(n, n as u64);
            let a = gather_dot_q16(&q, scale, &ids, &vals, 0.25, KernelMode::Scalar);
            let b = gather_dot_q16(&q, scale, &ids, &vals, 0.25, KernelMode::Vectorized);
            assert!((a - b).abs() <= 1e-4 * (1.0 + a.abs()), "n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn gather_dot_scattered_ids() {
        let (q, scale, _, _) = setup(64, 9);
        let ids: Vec<u32> = (0..64u32).rev().step_by(3).collect();
        let mut rng = TinyRng(77);
        let vals: Vec<f32> = ids.iter().map(|_| rng.f32()).collect();
        let a = gather_dot_q16(&q, scale, &ids, &vals, -1.0, KernelMode::Scalar);
        let b = gather_dot_q16(&q, scale, &ids, &vals, -1.0, KernelMode::Vectorized);
        assert!((a - b).abs() <= 1e-4 * (1.0 + a.abs()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_dot_rejects_bad_id() {
        let (q, scale, _, _) = setup(8, 1);
        gather_dot_q16(&q, scale, &[8], &[1.0], 0.0, KernelMode::Vectorized);
    }

    #[test]
    fn dot_batch_matches_per_example_gather() {
        for &(n, b) in &[(24usize, 5usize), (64, 4), (16, 9), (7, 3)] {
            let (q, scale, ids, _) = setup(n, (n + b) as u64);
            let mut rng = TinyRng(13 + n as u64);
            let vals: Vec<f32> = (0..n * b).map(|_| rng.f32()).collect();
            let mut out = vec![0.0f32; b];
            dot_batch_q16(&q, scale, n, &vals, 0.5, &mut out, KernelMode::Vectorized);
            for e in 0..b {
                let want = gather_dot_q16(
                    &q,
                    scale,
                    &ids,
                    &vals[e * n..(e + 1) * n],
                    0.5,
                    KernelMode::Scalar,
                );
                assert!(
                    (out[e] - want).abs() <= 1e-4 * (1.0 + want.abs()),
                    "n={n} e={e}: {} vs {want}",
                    out[e]
                );
            }
        }
    }

    #[test]
    fn quantized_dot_tracks_f32_dot() {
        // The fused dequantized score must stay within the analytic
        // error bound of the exact f32 dot: |err| ≤ (scale/2)·Σ|v|.
        let mut rng = TinyRng(21);
        let n = 128;
        let row: Vec<f32> = (0..n).map(|_| rng.f32()).collect();
        let vals: Vec<f32> = (0..n).map(|_| rng.f32()).collect();
        let mut q = vec![0i16; n];
        let scale = quantize_row(&row, &mut q);
        let ids: Vec<u32> = (0..n as u32).collect();
        let exact: f32 = row.iter().zip(&vals).map(|(w, v)| w * v).sum();
        let approx = gather_dot_q16(&q, scale, &ids, &vals, 0.0, KernelMode::Vectorized);
        let bound = 0.5 * scale * vals.iter().map(|v| v.abs()).sum::<f32>() + 1e-4;
        assert!(
            (exact - approx).abs() <= bound,
            "{exact} vs {approx} (bound {bound})"
        );
    }

    proptest! {
        #[test]
        fn prop_modes_agree(
            seed in 1u64..3000,
            n in 1usize..200,
            init in -2.0f32..2.0,
        ) {
            let (q, scale, ids, vals) = setup(n, seed);
            let a = gather_dot_q16(&q, scale, &ids, &vals, init, KernelMode::Scalar);
            let b = gather_dot_q16(&q, scale, &ids, &vals, init, KernelMode::Vectorized);
            prop_assert!((a - b).abs() <= 1e-3 * (1.0 + a.abs()));
        }

        #[test]
        fn prop_batch_modes_agree(
            seed in 1u64..3000,
            n in 1usize..80,
            b in 1usize..12,
        ) {
            let (q, scale, _, _) = setup(n, seed);
            let mut rng = TinyRng(seed.wrapping_mul(31) | 1);
            let vals: Vec<f32> = (0..n * b).map(|_| rng.f32()).collect();
            let mut s = vec![0.0f32; b];
            let mut v = vec![0.0f32; b];
            dot_batch_q16(&q, scale, n, &vals, 0.0, &mut s, KernelMode::Scalar);
            dot_batch_q16(&q, scale, n, &vals, 0.0, &mut v, KernelMode::Vectorized);
            for (x, y) in s.iter().zip(&v) {
                prop_assert!((x - y).abs() <= 1e-3 * (1.0 + x.abs()));
            }
        }
    }
}
