//! Batched signed-projection hashing kernel (paper §3.2, §5.4).
//!
//! SimHash-style families evaluate `P = K × L` sparse hyperplanes with
//! coefficients in `{+1, 0, −1}` against one input vector per selection
//! event — the inner loop of both training-time neuron selection and
//! `rebuild_tables`. The reference implementation walks each plane's
//! nonzero index list; this module adds a blocked layout that computes
//! **all planes at once** in register passes:
//!
//! * planes are packed eight per block, one plane per SIMD lane, with the
//!   coefficients of every input index stored contiguously
//!   (`packed[block][index][lane]`, one `i8` each);
//! * projecting broadcasts one input value and fused-multiply-adds the
//!   eight-lane coefficient column into eight running projections, so a
//!   pass over the input advances eight planes together — AVX2/FMA when
//!   the CPU has it, an unrolled portable loop otherwise.
//!
//! ## Exactness
//!
//! Unusually for a SIMD rewrite, every path here is **bit-identical**,
//! not merely close:
//!
//! * multiplying by a coefficient of `±1.0` is exact, so
//!   `fma(c, x, acc)` equals the reference's `acc + c·x` with no
//!   double-rounding difference;
//! * each lane accumulates its own plane's terms in ascending input-index
//!   order — the same order as the scalar reference loop;
//! * coefficient-zero terms contribute `±0.0`, which cannot change a
//!   running sum except in the sign of an exactly-zero projection, and
//!   `-0.0 + x == 0.0 + x` for every nonzero `x` while `+0.0 + -0.0`
//!   rounds to `+0.0`; accumulators start at `+0.0`, so even raw
//!   projections match bit-for-bit.
//!
//! The same argument covers the sparse path (skipping zero *input*
//! values), so dense and sparse evaluation of the same vector agree
//! exactly — the property `slide-lsh`'s proptests pin.

use crate::ops::KernelMode;

/// `P` sparse signed hyperplanes over `R^dim` in both a per-plane sparse
/// form (the scalar reference, coefficient lookup) and a blocked
/// plane-per-lane packed form (the vectorized kernel).
///
/// Build with [`SignedPlanesBuilder`]. Project with
/// [`SignedPlanes::project_dense`] / [`SignedPlanes::project_sparse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedPlanes {
    dim: usize,
    planes: usize,
    /// `planes + 1` offsets into `idx`/`sign`.
    offsets: Vec<usize>,
    /// Nonzero coefficient indices, strictly ascending within a plane.
    idx: Vec<u32>,
    /// `±1` coefficient signs, parallel to `idx`.
    sign: Vec<i8>,
    /// Blocked layout: `ceil(planes / 8)` blocks of `dim × 8` coefficients;
    /// block `b`, input index `i`, lane `l` (= plane `b·8 + l`) lives at
    /// `packed[b·dim·8 + i·8 + l]`. Lanes past the last plane stay zero.
    packed: Vec<i8>,
}

/// Incremental constructor for [`SignedPlanes`]: push each plane's sorted
/// nonzero `(index, sign)` entries, then [`SignedPlanesBuilder::finish`].
#[derive(Debug, Clone)]
pub struct SignedPlanesBuilder {
    dim: usize,
    offsets: Vec<usize>,
    idx: Vec<u32>,
    sign: Vec<i8>,
}

impl SignedPlanesBuilder {
    /// Starts a builder for planes over `R^dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        Self {
            dim,
            offsets: vec![0],
            idx: Vec::new(),
            sign: Vec::new(),
        }
    }

    /// Appends one plane given its nonzero entries in strictly ascending
    /// index order; signs must be `+1` or `-1`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index, a non-ascending index, or a sign
    /// outside `{-1, +1}`.
    pub fn push_plane<I: IntoIterator<Item = (u32, i8)>>(&mut self, entries: I) {
        let start = self.idx.len();
        for (i, s) in entries {
            assert!(
                (i as usize) < self.dim,
                "plane index {i} out of range for dim {}",
                self.dim
            );
            assert!(s == 1 || s == -1, "plane sign must be +1 or -1, got {s}");
            if let Some(&prev) = self.idx[start..].last() {
                assert!(i > prev, "plane indices must be strictly ascending");
            }
            self.idx.push(i);
            self.sign.push(s);
        }
        self.offsets.push(self.idx.len());
    }

    /// Seals the builder, computing the packed blocked layout.
    ///
    /// # Panics
    ///
    /// Panics if no plane was pushed.
    pub fn finish(self) -> SignedPlanes {
        let planes = self.offsets.len() - 1;
        assert!(planes > 0, "at least one plane is required");
        let nblocks = planes.div_ceil(8);
        let mut packed = vec![0i8; nblocks * self.dim * 8];
        for p in 0..planes {
            let base = (p / 8) * self.dim * 8 + p % 8;
            for e in self.offsets[p]..self.offsets[p + 1] {
                packed[base + self.idx[e] as usize * 8] = self.sign[e];
            }
        }
        SignedPlanes {
            dim: self.dim,
            planes,
            offsets: self.offsets,
            idx: self.idx,
            sign: self.sign,
            packed,
        }
    }
}

impl SignedPlanes {
    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of planes `P`.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// Plane `p`'s nonzero entries as parallel `(indices, signs)` slices.
    pub fn plane_entries(&self, p: usize) -> (&[u32], &[i8]) {
        let (lo, hi) = (self.offsets[p], self.offsets[p + 1]);
        (&self.idx[lo..hi], &self.sign[lo..hi])
    }

    /// Coefficient of plane `p` at input index `i`: `+1.0`, `-1.0` or
    /// `0.0`.
    pub fn coeff(&self, p: usize, i: u32) -> f32 {
        let (idx, sign) = self.plane_entries(p);
        match idx.binary_search(&i) {
            Ok(e) => sign[e] as f32,
            Err(_) => 0.0,
        }
    }

    /// Projects a dense input onto every plane: `out[p] = plane_p · input`.
    ///
    /// `Scalar` walks each plane's sparse entries sequentially (the
    /// reference); `Vectorized` runs the blocked plane-per-lane kernel.
    /// Both orders produce bit-identical projections (see the module
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != dim` or `out.len() != planes`.
    pub fn project_dense(&self, input: &[f32], out: &mut [f32], mode: KernelMode) {
        assert_eq!(input.len(), self.dim, "project_dense: input length");
        assert_eq!(out.len(), self.planes, "project_dense: output length");
        match mode {
            KernelMode::Scalar => {
                for (p, o) in out.iter_mut().enumerate() {
                    let (idx, sign) = self.plane_entries(p);
                    let mut acc = 0.0f32;
                    for (&i, &s) in idx.iter().zip(sign) {
                        acc += s as f32 * input[i as usize];
                    }
                    *o = acc;
                }
            }
            KernelMode::Vectorized => {
                #[cfg(target_arch = "x86_64")]
                if crate::fused::have_avx2_fma() {
                    // SAFETY: AVX2+FMA presence checked; packed holds
                    // ceil(planes/8) blocks of dim×8 coefficients.
                    unsafe { avxh::project_dense(&self.packed, self.dim, self.planes, input, out) };
                    return;
                }
                self.portable_dense(input, out);
            }
        }
    }

    /// Projects a sparse input given as parallel `(indices, values)`
    /// slices with strictly ascending indices.
    ///
    /// `Scalar` is the reference per-plane loop over the input's nonzeros
    /// with a coefficient lookup per term (the historical sparse path);
    /// `Vectorized` feeds the nonzeros through the same blocked kernel as
    /// the dense path. Projections agree bit-for-bit with each other and
    /// with [`SignedPlanes::project_dense`] of the densified vector.
    ///
    /// # Panics
    ///
    /// Panics if the slices' lengths differ, `out.len() != planes`, or an
    /// index is out of range.
    pub fn project_sparse(
        &self,
        indices: &[u32],
        values: &[f32],
        out: &mut [f32],
        mode: KernelMode,
    ) {
        assert_eq!(indices.len(), values.len(), "project_sparse: input lengths");
        assert_eq!(out.len(), self.planes, "project_sparse: output length");
        if let Some(&max) = indices.last() {
            assert!(
                (max as usize) < self.dim,
                "project_sparse: index {max} out of range for dim {}",
                self.dim
            );
        }
        match mode {
            KernelMode::Scalar => {
                for (p, o) in out.iter_mut().enumerate() {
                    let mut acc = 0.0f32;
                    for (&i, &v) in indices.iter().zip(values) {
                        acc += self.coeff(p, i) * v;
                    }
                    *o = acc;
                }
            }
            KernelMode::Vectorized => {
                #[cfg(target_arch = "x86_64")]
                if crate::fused::have_avx2_fma() {
                    // SAFETY: AVX2+FMA presence checked; indices validated
                    // against dim above (ascending => last is max).
                    unsafe {
                        avxh::project_sparse(
                            &self.packed,
                            self.dim,
                            self.planes,
                            indices,
                            values,
                            out,
                        )
                    };
                    return;
                }
                self.portable_sparse(indices, values, out);
            }
        }
    }

    /// Portable blocked fallback: one 8-lane accumulator array per block,
    /// same per-lane ascending-index order as the AVX path.
    fn portable_dense(&self, input: &[f32], out: &mut [f32]) {
        let nblocks = self.planes.div_ceil(8);
        for b in 0..nblocks {
            let base = b * self.dim * 8;
            let mut acc = [0.0f32; 8];
            for (i, &x) in input.iter().enumerate() {
                let col = &self.packed[base + i * 8..base + i * 8 + 8];
                for lane in 0..8 {
                    acc[lane] += col[lane] as f32 * x;
                }
            }
            let p0 = b * 8;
            let n = (self.planes - p0).min(8);
            out[p0..p0 + n].copy_from_slice(&acc[..n]);
        }
    }

    fn portable_sparse(&self, indices: &[u32], values: &[f32], out: &mut [f32]) {
        let nblocks = self.planes.div_ceil(8);
        for b in 0..nblocks {
            let base = b * self.dim * 8;
            let mut acc = [0.0f32; 8];
            for (&i, &x) in indices.iter().zip(values) {
                let off = base + i as usize * 8;
                let col = &self.packed[off..off + 8];
                for lane in 0..8 {
                    acc[lane] += col[lane] as f32 * x;
                }
            }
            let p0 = b * 8;
            let n = (self.planes - p0).min(8);
            out[p0..p0 + n].copy_from_slice(&acc[..n]);
        }
    }
}

/// AVX2/FMA blocked projection (x86-64 only); callers check
/// `have_avx2_fma()` first. Blocks are processed four at a time so four
/// independent FMA chains hide the instruction latency while each lane
/// still accumulates in strict ascending-index order.
#[cfg(target_arch = "x86_64")]
mod avxh {
    use std::arch::x86_64::*;

    /// Loads one 8-coefficient column (8 × i8) and widens it to `f32`
    /// lanes; both conversions are exact for `{-1, 0, 1}`.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `p` must point at 8 readable bytes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn column(p: *const i8) -> __m256 {
        _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_loadl_epi64(p as *const __m128i)))
    }

    /// Stores a block group's accumulators, spilling a final partial
    /// block through a stack buffer.
    ///
    /// # Safety
    ///
    /// Requires AVX2; `out.len() == planes`; blocks `b0..b0+G` exist.
    #[target_feature(enable = "avx2")]
    unsafe fn store<const G: usize>(acc: [__m256; G], b0: usize, planes: usize, out: &mut [f32]) {
        for (g, a) in acc.iter().enumerate() {
            let p0 = (b0 + g) * 8;
            if planes - p0 >= 8 {
                _mm256_storeu_ps(out.as_mut_ptr().add(p0), *a);
            } else {
                let mut tmp = [0.0f32; 8];
                _mm256_storeu_ps(tmp.as_mut_ptr(), *a);
                out[p0..planes].copy_from_slice(&tmp[..planes - p0]);
            }
        }
    }

    /// Projects `G` blocks (planes `b0·8 .. (b0+G)·8`) over a dense input.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; `packed` laid out as in `SignedPlanes`;
    /// `input.len() == dim`; `out.len() == planes`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dense_group<const G: usize>(
        packed: &[i8],
        dim: usize,
        b0: usize,
        planes: usize,
        input: &[f32],
        out: &mut [f32],
    ) {
        let mut acc = [_mm256_setzero_ps(); G];
        let bases: [*const i8; G] =
            std::array::from_fn(|g| packed.as_ptr().add((b0 + g) * dim * 8));
        for (i, &x) in input.iter().enumerate() {
            let xv = _mm256_set1_ps(x);
            for g in 0..G {
                acc[g] = _mm256_fmadd_ps(column(bases[g].add(i * 8)), xv, acc[g]);
            }
        }
        store(acc, b0, planes, out);
    }

    /// Projects `G` blocks over a sparse input's `(indices, values)`.
    ///
    /// # Safety
    ///
    /// As [`dense_group`], plus every index below `dim` and
    /// `indices.len() == values.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn sparse_group<const G: usize>(
        packed: &[i8],
        dim: usize,
        b0: usize,
        planes: usize,
        indices: &[u32],
        values: &[f32],
        out: &mut [f32],
    ) {
        let mut acc = [_mm256_setzero_ps(); G];
        let bases: [*const i8; G] =
            std::array::from_fn(|g| packed.as_ptr().add((b0 + g) * dim * 8));
        for (&i, &x) in indices.iter().zip(values) {
            let xv = _mm256_set1_ps(x);
            for g in 0..G {
                acc[g] = _mm256_fmadd_ps(column(bases[g].add(i as usize * 8)), xv, acc[g]);
            }
        }
        store(acc, b0, planes, out);
    }

    /// # Safety
    ///
    /// Requires AVX2+FMA; `packed` laid out as in `SignedPlanes`;
    /// `input.len() == dim`; `out.len() == planes`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn project_dense(
        packed: &[i8],
        dim: usize,
        planes: usize,
        input: &[f32],
        out: &mut [f32],
    ) {
        let nblocks = planes.div_ceil(8);
        let mut b = 0;
        while b < nblocks {
            match nblocks - b {
                1 => dense_group::<1>(packed, dim, b, planes, input, out),
                2 => dense_group::<2>(packed, dim, b, planes, input, out),
                3 => dense_group::<3>(packed, dim, b, planes, input, out),
                _ => dense_group::<4>(packed, dim, b, planes, input, out),
            }
            b += (nblocks - b).min(4);
        }
    }

    /// # Safety
    ///
    /// As [`project_dense`], with the sparse-input requirements of
    /// [`sparse_group`].
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn project_sparse(
        packed: &[i8],
        dim: usize,
        planes: usize,
        indices: &[u32],
        values: &[f32],
        out: &mut [f32],
    ) {
        let nblocks = planes.div_ceil(8);
        let mut b = 0;
        while b < nblocks {
            match nblocks - b {
                1 => sparse_group::<1>(packed, dim, b, planes, indices, values, out),
                2 => sparse_group::<2>(packed, dim, b, planes, indices, values, out),
                3 => sparse_group::<3>(packed, dim, b, planes, indices, values, out),
                _ => sparse_group::<4>(packed, dim, b, planes, indices, values, out),
            }
            b += (nblocks - b).min(4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic xorshift for test data (no external RNG dep here).
    struct TinyRng(u64);

    impl TinyRng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }

        fn f32(&mut self) -> f32 {
            (self.next() >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        }
    }

    fn random_planes(dim: usize, planes: usize, seed: u64) -> SignedPlanes {
        let mut rng = TinyRng(seed | 1);
        let mut b = SignedPlanesBuilder::new(dim);
        for _ in 0..planes {
            let mut entries: Vec<(u32, i8)> = Vec::new();
            for i in 0..dim as u32 {
                if rng.next().is_multiple_of(3) {
                    entries.push((i, if rng.next().is_multiple_of(2) { 1 } else { -1 }));
                }
            }
            b.push_plane(entries);
        }
        b.finish()
    }

    #[test]
    fn builder_validates() {
        let mut b = SignedPlanesBuilder::new(10);
        b.push_plane([(1, 1), (3, -1), (9, 1)]);
        b.push_plane([]); // empty plane is legal
        let sp = b.finish();
        assert_eq!(sp.dim(), 10);
        assert_eq!(sp.planes(), 2);
        assert_eq!(sp.plane_entries(0).0, &[1, 3, 9]);
        assert_eq!(sp.plane_entries(0).1, &[1, -1, 1]);
        assert_eq!(sp.plane_entries(1).0, &[] as &[u32]);
        assert_eq!(sp.coeff(0, 3), -1.0);
        assert_eq!(sp.coeff(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn builder_rejects_unsorted() {
        let mut b = SignedPlanesBuilder::new(10);
        b.push_plane([(3, 1), (1, -1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_out_of_range() {
        let mut b = SignedPlanesBuilder::new(4);
        b.push_plane([(4, 1)]);
    }

    #[test]
    #[should_panic(expected = "sign")]
    fn builder_rejects_bad_sign() {
        let mut b = SignedPlanesBuilder::new(4);
        b.push_plane([(0, 2)]);
    }

    #[test]
    fn dense_modes_agree_exactly() {
        // Partial last block (planes = 13) and a dim crossing several
        // cache lines: Scalar and Vectorized must match to the bit.
        for &(dim, planes, seed) in &[
            (32usize, 13usize, 7u64),
            (96, 8, 11),
            (5, 1, 3),
            (128, 72, 42),
        ] {
            let sp = random_planes(dim, planes, seed);
            let mut rng = TinyRng(seed.wrapping_mul(0x9E37));
            let input: Vec<f32> = (0..dim).map(|_| rng.f32()).collect();
            let mut a = vec![0.0f32; planes];
            let mut b = vec![1.0f32; planes];
            sp.project_dense(&input, &mut a, KernelMode::Scalar);
            sp.project_dense(&input, &mut b, KernelMode::Vectorized);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn portable_fallback_matches_scalar_exactly() {
        let sp = random_planes(48, 21, 5);
        let mut rng = TinyRng(99);
        let input: Vec<f32> = (0..48).map(|_| rng.f32()).collect();
        let mut a = vec![0.0f32; 21];
        let mut b = vec![0.0f32; 21];
        sp.project_dense(&input, &mut a, KernelMode::Scalar);
        sp.portable_dense(&input, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let indices: Vec<u32> = (0..48u32).step_by(3).collect();
        let values: Vec<f32> = indices.iter().map(|_| rng.f32()).collect();
        sp.project_sparse(&indices, &values, &mut a, KernelMode::Scalar);
        sp.portable_sparse(&indices, &values, &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sparse_modes_agree_exactly() {
        let sp = random_planes(64, 24, 17);
        let mut rng = TinyRng(23);
        let indices: Vec<u32> = (0..64u32)
            .filter(|_| rng.next().is_multiple_of(4))
            .collect();
        let values: Vec<f32> = indices.iter().map(|_| rng.f32()).collect();
        let mut a = vec![0.0f32; 24];
        let mut b = vec![0.0f32; 24];
        sp.project_sparse(&indices, &values, &mut a, KernelMode::Scalar);
        sp.project_sparse(&indices, &values, &mut b, KernelMode::Vectorized);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn sparse_matches_densified_dense() {
        let dim = 40;
        let sp = random_planes(dim, 11, 29);
        let mut rng = TinyRng(31);
        let indices: Vec<u32> = (0..dim as u32)
            .filter(|_| rng.next().is_multiple_of(3))
            .collect();
        let values: Vec<f32> = indices.iter().map(|_| rng.f32()).collect();
        let mut dense = vec![0.0f32; dim];
        for (&i, &v) in indices.iter().zip(&values) {
            dense[i as usize] = v;
        }
        let mut a = vec![0.0f32; 11];
        let mut b = vec![0.0f32; 11];
        sp.project_sparse(&indices, &values, &mut a, KernelMode::Vectorized);
        sp.project_dense(&dense, &mut b, KernelMode::Vectorized);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    proptest! {
        #[test]
        fn prop_dense_modes_bit_identical(
            seed in 1u64..5000,
            dim in 1usize..80,
            planes in 1usize..40,
        ) {
            let sp = random_planes(dim, planes, seed);
            let mut rng = TinyRng(seed.wrapping_mul(0xA5A5) | 1);
            let input: Vec<f32> = (0..dim).map(|_| rng.f32() * 4.0).collect();
            let mut a = vec![0.0f32; planes];
            let mut b = vec![0.0f32; planes];
            sp.project_dense(&input, &mut a, KernelMode::Scalar);
            sp.project_dense(&input, &mut b, KernelMode::Vectorized);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        #[test]
        fn prop_sparse_modes_bit_identical(
            seed in 1u64..5000,
            dim in 1usize..80,
            planes in 1usize..40,
        ) {
            let sp = random_planes(dim, planes, seed);
            let mut rng = TinyRng(seed.wrapping_mul(0x5A5A) | 1);
            let indices: Vec<u32> =
                (0..dim as u32).filter(|_| !rng.next().is_multiple_of(3)).collect();
            let values: Vec<f32> = indices.iter().map(|_| rng.f32() * 4.0).collect();
            let mut a = vec![0.0f32; planes];
            let mut b = vec![0.0f32; planes];
            sp.project_sparse(&indices, &values, &mut a, KernelMode::Scalar);
            sp.project_sparse(&indices, &values, &mut b, KernelMode::Vectorized);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
