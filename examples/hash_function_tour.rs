//! A tour of the four LSH families: collision behaviour as a function of
//! similarity, and how (K, L) shape retrieval (paper §2 and Appendix A).
//!
//! ```sh
//! cargo run --release --example hash_function_tour
//! ```

use slide::data::rng::{Rng, Xoshiro256PlusPlus};
use slide::data::SparseVector;
use slide::lsh::dwta::DwtaHash;
use slide::lsh::family::HashFamily;
use slide::lsh::minhash::DophHash;
use slide::lsh::prob;
use slide::lsh::simhash::SimHash;
use slide::lsh::wta::WtaHash;

const DIM: usize = 256;
const TRIALS: usize = 400;

/// Empirical single-code collision rate between `a` and a noisy copy.
fn collision_rate(family: &dyn HashFamily, a: &[f32], b: &[f32]) -> f64 {
    let mut ca = vec![0u32; family.num_codes()];
    let mut cb = vec![0u32; family.num_codes()];
    family.hash_dense(a, &mut ca);
    family.hash_dense(b, &mut cb);
    let hits = ca.iter().zip(&cb).filter(|(x, y)| x == y).count();
    hits as f64 / family.num_codes() as f64
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    (dot / (na * nb)) as f64
}

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
    // K=1 with many tables ⇒ each code is an independent collision trial.
    let simhash = SimHash::new(DIM, 1, TRIALS, 1.0, &mut rng);
    let wta = WtaHash::new(DIM, 1, TRIALS, 8, &mut rng);
    let dwta = DwtaHash::new(DIM, 1, TRIALS, 8, &mut rng);
    let doph = DophHash::new(DIM, 1, TRIALS, 16, 32, &mut rng);

    println!("collision rate vs noise level (dense input, {DIM} dims):");
    println!(
        "{:>8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "noise", "cosine", "1-θ/π", "simhash", "wta", "dwta", "doph"
    );
    let base: Vec<f32> = (0..DIM).map(|_| rng.next_normal() as f32).collect();
    for &noise in &[0.0f32, 0.1, 0.3, 0.6, 1.0, 2.0] {
        let noisy: Vec<f32> = base
            .iter()
            .map(|&x| x + noise * rng.next_normal() as f32)
            .collect();
        let cos = cosine(&base, &noisy);
        println!(
            "{:>8.2} {:>8.3} {:>10.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            noise,
            cos,
            prob::simhash_collision_prob(cos),
            collision_rate(&simhash, &base, &noisy),
            collision_rate(&wta, &base, &noisy),
            collision_rate(&dwta, &base, &noisy),
            collision_rate(&doph, &base, &noisy),
        );
    }

    // DWTA's reason to exist: sparse inputs.
    println!("\nsparse inputs (30/{DIM} nonzero), same-support jitter vs disjoint support:");
    let support: Vec<u32> = rng
        .sample_distinct(DIM, 30)
        .into_iter()
        .map(|i| i as u32)
        .collect();
    let sv = |idx: &[u32], rng: &mut Xoshiro256PlusPlus| {
        SparseVector::from_pairs(idx.iter().map(|&i| (i, rng.next_f32() + 0.5)))
    };
    let a = sv(&support, &mut rng);
    let jittered = {
        let mut pairs: Vec<(u32, f32)> = a.iter().collect();
        for p in pairs.iter_mut() {
            p.1 *= 1.0 + 0.05 * (rng.next_f32() - 0.5);
        }
        SparseVector::from_pairs(pairs)
    };
    let disjoint_support: Vec<u32> = (0..DIM as u32)
        .filter(|i| !support.contains(i))
        .take(30)
        .collect();
    let disjoint = sv(&disjoint_support, &mut rng);

    for (name, family) in [("dwta", &dwta as &dyn HashFamily), ("doph", &doph)] {
        let mut ca = vec![0u32; family.num_codes()];
        let mut cb = vec![0u32; family.num_codes()];
        let mut cc = vec![0u32; family.num_codes()];
        family.hash_sparse(&a, &mut ca);
        family.hash_sparse(&jittered, &mut cb);
        family.hash_sparse(&disjoint, &mut cc);
        let rate = |x: &[u32], y: &[u32]| {
            x.iter().zip(y).filter(|(p, q)| p == q).count() as f64 / x.len() as f64
        };
        println!(
            "  {name:>6}: similar {:.3}, disjoint {:.3}",
            rate(&ca, &cb),
            rate(&ca, &cc)
        );
    }

    // The (K, L) trade-off in closed form (paper §2.1).
    println!("\ncandidate probability 1-(1-p^K)^L for p = 0.8:");
    println!("{:>6} {:>8} {:>8} {:>8}", "K", "L=10", "L=50", "L=200");
    for k in [1usize, 3, 6, 9, 12] {
        println!(
            "{:>6} {:>8.3} {:>8.3} {:>8.3}",
            k,
            prob::candidate_prob(0.8, k, 10),
            prob::candidate_prob(0.8, k, 50),
            prob::candidate_prob(0.8, k, 200),
        );
    }
}
