//! Train → snapshot → serve over HTTP → retrain → hot-reload.
//!
//! Starts a real `std::net` HTTP/1.1 server on an ephemeral localhost
//! port, fires typed client requests at it, then retrains the model,
//! writes a second snapshot, and hot-swaps it through `POST /v1/reload`
//! with the server still up — the model epoch in every response shows
//! which snapshot answered.
//!
//! ```sh
//! cargo run --release --example serve_http
//! ```

use std::sync::Arc;

use slide::prelude::*;
use slide::serve::Client;

fn main() {
    // 1. Train a small SLIDE network and freeze snapshot A.
    let data = generate(&SyntheticConfig::tiny().with_seed(3));
    let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
        .hidden(24)
        .output_lsh(LshLayerConfig::simhash(3, 10))
        .learning_rate(2e-3)
        .seed(11)
        .build()
        .expect("valid config");
    let mut trainer = SlideTrainer::new(config).expect("valid network");
    trainer.train(&data.train, &TrainOptions::new(1).batch_size(32));
    let snapshot = std::env::temp_dir().join("slide_serve_http_example.slidesnap");
    trainer
        .network()
        .save_snapshot(&snapshot)
        .expect("snapshot written");
    println!(
        "epoch-1 model: P@1 = {:.3}",
        trainer.evaluate_n(&data.test, 200)
    );

    // 2. Serve it: EngineHandle (hot-swappable) behind the HTTP front-end.
    let handle = Arc::new(
        EngineHandle::from_snapshot_file(&snapshot, ServeOptions::default().with_top_k(3))
            .expect("snapshot loads"),
    );
    let server = HttpServer::serve(Arc::clone(&handle), "127.0.0.1:0", HttpOptions::default())
        .expect("bind");
    let addr = server.local_addr();
    println!("serving on http://{addr} (POST /v1/predict, GET /healthz, POST /v1/reload)");

    // 3. A client request over localhost.
    let mut client = Client::connect(addr).expect("connect");
    let example = &data.test.examples()[0];
    let resp = client.predict(&example.features, None).expect("answered");
    println!(
        "predict @ epoch {}: classes {:?} (true labels {:?})",
        resp.epoch, resp.predictions[0].classes, example.labels
    );

    // 4. Retrain (two more epochs), snapshot B, hot-reload mid-serve.
    trainer.train(&data.train, &TrainOptions::new(2).batch_size(32));
    trainer
        .network()
        .save_snapshot(&snapshot)
        .expect("snapshot rewritten");
    let new_epoch = client
        .reload(snapshot.to_str().expect("utf-8 path"))
        .expect("reload accepted");
    println!(
        "hot-reloaded: epoch {} (retrained P@1 = {:.3})",
        new_epoch,
        trainer.evaluate_n(&data.test, 200)
    );

    // 5. Same connection, new model — zero downtime.
    let resp = client.predict(&example.features, None).expect("answered");
    assert_eq!(resp.epoch, new_epoch);
    println!(
        "predict @ epoch {}: classes {:?}",
        resp.epoch, resp.predictions[0].classes
    );

    let stats = client.stats_json().expect("stats");
    println!("stats: {stats:?}");
    server.shutdown();
    std::fs::remove_file(&snapshot).ok();
}
