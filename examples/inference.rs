//! Train → snapshot → serve: the full inference lifecycle.
//!
//! Trains a small SLIDE network, freezes it to a snapshot file, loads it
//! into a `ServingEngine` (which rebuilds the hash tables with centered
//! rows for retrieval quality), and serves top-k requests both directly
//! and through the micro-batching `BatchServer`.
//!
//! ```sh
//! cargo run --release --example inference
//! ```

use std::sync::Arc;

use slide::prelude::*;
use slide::serve::BatchOptions;

fn main() {
    // 1. Train a SLIDE network on a synthetic extreme-classification task.
    let data = generate(&SyntheticConfig::tiny().with_seed(3));
    let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
        .hidden(24)
        .output_lsh(LshLayerConfig::simhash(3, 10))
        .learning_rate(2e-3)
        .seed(11)
        .build()
        .expect("valid config");
    let mut trainer = SlideTrainer::new(config).expect("valid network");
    let report = trainer.train(&data.train, &TrainOptions::new(3).batch_size(32));
    println!(
        "trained {} iterations in {:.2}s; dense P@1 = {:.3}",
        report.iterations,
        report.seconds,
        trainer.evaluate_n(&data.test, 200)
    );

    // 2. Freeze the trained network to a versioned snapshot file.
    let path = std::env::temp_dir().join("slide_example.slidesnap");
    trainer
        .network()
        .save_snapshot(&path)
        .expect("snapshot written");
    println!(
        "snapshot: {} bytes at {}",
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
        path.display()
    );

    // 3. Serve: load the snapshot into an engine (tables rebuilt with
    //    centered rows) and answer requests without label leakage.
    let engine = Arc::new(
        ServingEngine::from_snapshot_file(&path, ServeOptions::default().with_top_k(3))
            .expect("snapshot loads"),
    );
    std::fs::remove_file(&path).ok();

    let example = &data.test.examples()[0];
    let answer = engine.predict(&example.features).expect("valid request");
    println!(
        "direct predict: top-3 {:?} in {:?} (true labels {:?})",
        answer.topk.items(),
        answer.latency,
        example.labels
    );

    // 4. The same engine behind the micro-batching request queue.
    let server = BatchServer::start(
        Arc::clone(&engine),
        BatchOptions::default().with_workers(2).with_max_batch(8),
    );
    let handles: Vec<_> = data
        .test
        .iter()
        .take(64)
        .map(|ex| server.submit(ex.features.clone()).expect("valid request"))
        .collect();
    let mut hits = 0usize;
    for (h, ex) in handles.into_iter().zip(data.test.iter()) {
        let p = h.wait().expect("answered");
        if let Some(top) = p.topk.top1() {
            hits += ex.labels.binary_search(&top).is_ok() as usize;
        }
    }
    let stats = server.stats();
    println!(
        "batched: {} requests, mean batch {:.1}, mean queue wait {:?}, served P@1 = {:.3}",
        stats.requests,
        stats.mean_batch,
        stats.mean_queue_wait,
        hits as f64 / 64.0
    );
    server.shutdown();
    println!(
        "engine totals: {} requests, mean latency {:?}",
        engine.stats().requests,
        engine.stats().mean_latency()
    );
}
