//! End-to-end extreme classification: SLIDE vs dense vs sampled softmax
//! on a Delicious-like synthetic workload, with time-vs-accuracy
//! checkpoints (a miniature of the paper's Figure 5 / Figure 7).
//!
//! ```sh
//! cargo run --release --example extreme_classification [-- <scale>]
//! ```
//!
//! `<scale>` is `smoke` (default), `medium` or `full`.

use slide::prelude::*;

fn print_history(name: &str, history: &[slide::core::Checkpoint], final_p1: f64) {
    println!("\n{name} checkpoints (iteration, seconds, P@1):");
    for c in history {
        println!(
            "  iter {:>5}  t={:>7.2}s  P@1={:.3}  loss={:.3}",
            c.iteration, c.seconds, c.p_at_1, c.train_loss
        );
    }
    println!("  final P@1 = {final_p1:.3}");
}

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Smoke);
    println!("scale: {scale}");
    let data = generate(&SyntheticConfig::delicious_like(scale));
    let stats = data.train.stats();
    println!(
        "delicious-like: {} train, {} features, {} labels, {:.1} nnz/doc",
        stats.size, stats.feature_dim, stats.label_dim, stats.avg_feature_nnz
    );

    let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
        .hidden(128)
        .output_lsh(LshLayerConfig::simhash(9, 50))
        .learning_rate(1e-3)
        .seed(3)
        .build()
        .expect("valid config");
    // Checkpoint four times per epoch regardless of dataset size.
    let eval_every = ((data.train.len() / 128).max(4) / 4).max(1) as u64;
    let options = TrainOptions::new(3)
        .batch_size(128)
        .eval_every(eval_every)
        .eval_examples(300)
        .seed(1);

    // SLIDE with input-adaptive LSH sampling.
    let mut slide = SlideTrainer::new(config.clone()).expect("valid network");
    let r_slide = slide.train_with_eval(&data.train, &data.test, &options);
    print_history(
        "SLIDE",
        &r_slide.history,
        slide.evaluate_n(&data.test, 1000),
    );

    // Dense full softmax.
    let mut dense = DenseTrainer::new(config.clone()).expect("valid network");
    let r_dense = dense.train_with_eval(&data.train, &data.test, &options);
    print_history(
        "Dense",
        &r_dense.history,
        dense.evaluate_n(&data.test, 1000),
    );

    // Static sampled softmax with 20% of the classes (the paper found
    // anything less gives poor accuracy).
    let sample = data.train.label_dim() / 5;
    let mut ssm = SampledSoftmaxTrainer::new(config, sample).expect("valid network");
    let r_ssm = ssm.train_with_eval(&data.train, &data.test, &options);
    print_history(
        &format!("SampledSoftmax({sample})"),
        &r_ssm.history,
        ssm.evaluate_n(&data.test, 1000),
    );

    println!(
        "\ntotal training seconds — SLIDE {:.1}, Dense {:.1}, SampledSoftmax {:.1}",
        r_slide.seconds, r_dense.seconds, r_ssm.seconds
    );
    println!(
        "SLIDE touched {:.2}% of output neurons per example on average",
        100.0 * r_slide.telemetry.avg_active_output / data.train.label_dim() as f64
    );
}
