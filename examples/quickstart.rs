//! Quickstart: train a SLIDE network on a small synthetic
//! extreme-classification task and compare it against the dense baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use slide::prelude::*;

fn main() {
    // 1. A synthetic extreme-classification dataset (stands in for the
    //    paper's Delicious-200K; see DESIGN.md substitution #1).
    let mut cfg = SyntheticConfig::tiny();
    cfg.label_dim = 500;
    cfg.feature_dim = 2_000;
    cfg.train_size = 4_000;
    cfg.test_size = 500;
    let data = generate(&cfg.with_seed(42));
    let stats = data.train.stats();
    println!(
        "dataset: {} train / {} test, {} features ({:.3}% dense), {} labels",
        data.train.len(),
        data.test.len(),
        stats.feature_dim,
        stats.feature_sparsity * 100.0,
        stats.label_dim
    );

    // 2. The paper's architecture: one 128-unit hidden layer, LSH-sampled
    //    softmax output (SimHash, K=6, L=20 scaled to this label count).
    let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
        .hidden(128)
        .output_lsh(LshLayerConfig::simhash(6, 20))
        .learning_rate(1e-3)
        .seed(7)
        .build()
        .expect("valid config");
    println!(
        "network: {} parameters, LSH on the output layer",
        config.num_parameters()
    );

    // 3. Train SLIDE.
    let options = TrainOptions::new(5).batch_size(128).seed(1);
    let mut slide = SlideTrainer::new(config.clone()).expect("valid network");
    let report = slide.train(&data.train, &options);
    let p1 = slide.evaluate_n(&data.test, 500);
    println!(
        "SLIDE : {:6.2}s for {} iterations, P@1 = {:.3}, avg active output = {:.0}/{} ({:.2}%)",
        report.seconds,
        report.iterations,
        p1,
        report.telemetry.avg_active_output,
        data.train.label_dim(),
        100.0 * report.telemetry.avg_active_output / data.train.label_dim() as f64,
    );

    // 4. The dense full-softmax baseline on the same architecture.
    let mut dense = DenseTrainer::new(config).expect("valid network");
    let dreport = dense.train(&data.train, &options);
    let dp1 = dense.evaluate_n(&data.test, 500);
    println!(
        "Dense : {:6.2}s for {} iterations, P@1 = {:.3}",
        dreport.seconds, dreport.iterations, dp1
    );

    println!(
        "speedup: {:.1}x per-epoch at comparable accuracy",
        dreport.seconds / report.seconds.max(1e-9)
    );
}
