//! Thread scalability: epoch time of SLIDE vs the dense baseline across
//! core counts (a miniature of the paper's Figure 9 / Table 2).
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use slide::prelude::*;

fn main() {
    let mut cfg = SyntheticConfig::tiny();
    cfg.feature_dim = 5_000;
    cfg.label_dim = 2_000;
    cfg.train_size = 4_000;
    cfg.test_size = 200;
    let data = generate(&cfg.with_seed(11));

    let net_cfg = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
        .hidden(64)
        .output_lsh(LshLayerConfig::simhash(7, 30))
        .seed(5)
        .build()
        .expect("valid config");

    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut threads = vec![1usize, 2, 4, 8, 16, 32];
    threads.retain(|&t| t <= max_threads);

    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "threads", "slide_s", "dense_s", "slide_util", "dense_util"
    );
    for &t in &threads {
        let options = TrainOptions::new(1).batch_size(128).threads(t).seed(2);
        let mut slide = SlideTrainer::new(net_cfg.clone()).expect("valid network");
        let rs = slide.train(&data.train, &options);
        let mut dense = DenseTrainer::new(net_cfg.clone()).expect("valid network");
        let rd = dense.train(&data.train, &options);
        println!(
            "{:>8} {:>12.3} {:>12.3} {:>11.0}% {:>11.0}%",
            t,
            rs.seconds,
            rd.seconds,
            rs.telemetry.utilization * 100.0,
            rd.telemetry.utilization * 100.0
        );
    }
    println!("\n(The paper's Figure 9: SLIDE scales near-linearly with cores;");
    println!(" its advantage over dense grows as threads are added.)");
}
