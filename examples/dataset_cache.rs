//! The data layer end to end: stream a corpus to svmlight text without
//! ever materializing it, compile it into the binary cache, memory-map
//! the cache, and train through the same `ExampleSource` interface the
//! in-memory path uses.
//!
//! ```sh
//! cargo run --release --example dataset_cache
//! ```

use std::io::{BufWriter, Write as _};

use slide::data::svmlight;
use slide::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("slide-dataset-cache-example");
    std::fs::create_dir_all(&dir)?;
    let svm_path = dir.join("corpus.svm");
    let cache_path = dir.join("corpus.slidecache");

    // 1. Stream a synthetic corpus straight to disk: no Dataset is ever
    //    built, so this scales to corpora far larger than RAM.
    let cfg = SyntheticConfig::tiny().with_seed(42).with_sizes(2_000, 200);
    {
        let mut w = BufWriter::new(std::fs::File::create(&svm_path)?);
        svmlight::write_header(&mut w, cfg.train_size, cfg.feature_dim, cfg.label_dim)?;
        let mut stream = SyntheticStream::train(&cfg);
        for _ in 0..cfg.train_size {
            svmlight::write_record(&mut w, &stream.next_example())?;
        }
        w.flush()?;
    }
    println!(
        "wrote {} ({} examples of svmlight text)",
        svm_path.display(),
        cfg.train_size
    );

    // 2. A validating streaming pass: allocation-free, typed errors.
    let mut reader = StreamingSvmReader::open(&svm_path)?;
    println!(
        "header: {} examples, {} features, {} labels",
        reader.header().num_examples,
        reader.header().feature_dim,
        reader.header().label_dim
    );
    let mut ex = Example::empty();
    let mut nnz = 0usize;
    while reader.read_into(&mut ex)? {
        nnz += ex.features.nnz();
    }
    println!("streamed {} nonzeros without materializing the corpus", nnz);

    // 3. Compile the binary cache (one pass, constant memory, FNV
    //    checksum) and memory-map it.
    let summary = build_cache_from_svmlight(&svm_path, &cache_path)?;
    println!(
        "compiled {} -> {:.1} KB cache",
        cache_path.display(),
        summary.bytes as f64 / 1e3
    );
    let train = MmapDataset::open(&cache_path)?;
    println!(
        "opened via {} backing, {} examples",
        train.access_mode(),
        train.len()
    );

    // 4. Train straight off the cache — same Trainer, same loop; the
    //    shard-aware shuffle keeps batch reads in bounded windows.
    let test = generate(&cfg).test;
    let config = NetworkConfig::builder(train.feature_dim(), train.label_dim())
        .hidden(24)
        .output_lsh(
            LshLayerConfig::simhash(3, 10).with_strategy(SamplingStrategy::Vanilla { budget: 10 }),
        )
        .learning_rate(2e-3)
        .seed(11)
        .build()?;
    let mut trainer = SlideTrainer::new(config)?;
    let report = trainer.train_source(&train, &TrainOptions::new(3).batch_size(32).threads(2));
    println!(
        "trained {} iterations in {:.2}s ({:.0} ex/s), P@1 = {:.3}",
        report.iterations,
        report.seconds,
        (train.len() * 3) as f64 / report.seconds.max(1e-12),
        trainer.evaluate_n(&test, 200)
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
