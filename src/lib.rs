//! # slide — facade crate for the SLIDE reproduction
//!
//! SLIDE (Sub-LInear Deep learning Engine, Chen et al., MLSys 2020) trains
//! large fully-connected networks by *adaptive sparsity*: every layer keeps
//! locality-sensitive hash tables over its neuron weight vectors, hashes
//! each input, and activates only the neurons retrieved from the matching
//! buckets — forward and backward. Combined with HOGWILD-style lock-free
//! gradient updates across a batch-parallel thread pool, this computes
//! <1% of a dense pass while converging identically per iteration.
//!
//! This crate re-exports the whole workspace:
//!
//! * [`data`] — sparse vectors, datasets, metrics, deterministic RNG;
//! * [`lsh`] — hash families (SimHash, WTA, DWTA, DOPH), (K, L) tables,
//!   bucket policies and active-neuron sampling strategies;
//! * [`kernels`] — scalar and vectorized numeric kernels;
//! * [`memsim`] — TLB/cache simulator used for the paper's
//!   micro-architecture experiments;
//! * [`core`] — the selector-driven sparse execution engine: SLIDE and
//!   the paper's baselines are one generic trainer under different
//!   `NeuronSelector`s (LSH-adaptive, dense, static sampled); plus the
//!   inference stack (label-free LSH retrieval, in-place top-k) and the
//!   versioned network snapshot format;
//! * [`serve`] — the serving layer: a frozen-snapshot `ServingEngine`,
//!   a micro-batching `BatchServer`, an epoch-swapped `EngineHandle`
//!   for zero-downtime snapshot hot-reload, and a `std::net` HTTP/1.1
//!   front-end speaking a versioned typed wire protocol.
//!
//! ## Quickstart
//!
//! ```
//! use slide::prelude::*;
//!
//! // A tiny synthetic extreme-classification task.
//! let data = generate(&SyntheticConfig::tiny().with_seed(1));
//!
//! // A 2-layer SLIDE network: dense hidden layer, LSH-sampled output.
//! let config = NetworkConfig::builder(data.train.feature_dim(), data.train.label_dim())
//!     .hidden(16)
//!     .output_lsh(LshLayerConfig::simhash(3, 8))
//!     .seed(7)
//!     .build()
//!     .expect("valid config");
//! let mut trainer = SlideTrainer::new(config).expect("valid network");
//! let report = trainer.train(&data.train, &TrainOptions::new(1).batch_size(32));
//! assert!(report.iterations > 0);
//! let p1 = trainer.evaluate(&data.test);
//! assert!(p1 >= 0.0);
//! ```

pub use slide_core as core;
pub use slide_data as data;
pub use slide_kernels as kernels;
pub use slide_lsh as lsh;
pub use slide_memsim as memsim;
pub use slide_serve as serve;

/// Commonly used items, re-exported for `use slide::prelude::*`.
pub mod prelude {
    pub use slide_core::{
        baseline::{DenseTrainer, SampledSoftmaxTrainer, StaticSampledSelector},
        config::{LshLayerConfig, NetworkConfig},
        inference::{InferenceSelector, TopK},
        network::Network,
        selector::{ActiveSet, DenseSelector, LshSelector, NeuronSelector, ShardedSelector},
        trainer::{SlideTrainer, TrainOptions, TrainReport, Trainer},
    };
    pub use slide_data::{
        cache::{build_cache_from_svmlight, DatasetBuilder},
        metrics::{precision_at_k, recall_at_k},
        source::{ExampleSource, MmapDataset},
        stream::StreamingSvmReader,
        synth::{generate, Scale, SyntheticConfig, SyntheticStream},
        Dataset, Example, SparseVector,
    };
    pub use slide_lsh::{
        family::HashFamily,
        retrieve::QueryBudget,
        sampling::SamplingStrategy,
        table::{LshTables, TableConfig},
    };
    pub use slide_serve::{
        BatchOptions, BatchServer, DegradeOptions, EngineHandle, FaultPlan, HttpOptions,
        HttpServer, RetryPolicy, ServeError, ServeOptions, ServingEngine, SnapshotWatcher,
    };
}
